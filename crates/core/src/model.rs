//! The ℓ2-regularized polynomial regression model — Equations (1)–(2).
//!
//! [`OnlineRegression`] ties together a [`Basis`] (Equation 1's Φ), an
//! [`AsymmetricLoss`] with a [`WeightingScheme`] (the loss family of
//! §4.2), and an [`OnlineOptimizer`] (NAG by default), and learns in the
//! strict on-line regime: `learn` is called once per completed job, in
//! completion order, and `predict` may be called at any point in between.
//!
//! ## Target normalization
//!
//! NAG normalizes *feature* scales but its AdaGrad-style per-coordinate
//! steps are scale-free in magnitude, so raw targets in seconds (10⁰–10⁶)
//! would need thousands of updates just to ramp the bias. We apply the
//! same trick NAG applies to features to the *target*: the weights live
//! in a normalized output space (`f̂ = f / scale`, where `scale` tracks
//! the largest `|p|` seen and past weights are rescaled when it grows),
//! while the **loss and its gradient are evaluated in real seconds** and
//! chain-ruled back (`∂L/∂ŵ = ∂L/∂f · scale · φ`). The optimized
//! objective is therefore exactly Equation (2) — in particular the
//! asymmetry between a linear and a squared branch keeps its real-seconds
//! meaning — while weight magnitudes stay O(1) for the optimizer.
//! Documented as an implementation note in DESIGN.md §2.

use crate::basis::Basis;
use crate::loss::AsymmetricLoss;
use crate::optimizer::{NagOptimizer, OnlineOptimizer};
use crate::weighting::WeightingScheme;

/// Default ℓ2 regularization coefficient λ of Equation (2). Kept small:
/// the NAG normalization already bounds effective step sizes, and λ only
/// needs to damp weight drift on rarely-active quadratic components.
pub const DEFAULT_L2: f64 = 1e-6;

/// Default NAG learning rate. Calibrated by the convergence tests in this
/// crate (synthetic per-user workloads reach a clearly better MAE than the
/// requested-time baseline within a few hundred jobs).
pub const DEFAULT_ETA: f64 = 0.5;

/// Outcome of one learning step, for diagnostics and Table 8 metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnRecord {
    /// The model's prediction for this example *before* the update.
    pub prediction: f64,
    /// The γ-weighted loss incurred by that prediction.
    pub loss: f64,
    /// The weight γ_j applied.
    pub gamma: f64,
}

/// On-line weighted-asymmetric-loss polynomial regression.
pub struct OnlineRegression {
    basis: Basis,
    weights: Vec<f64>,
    optimizer: Box<dyn OnlineOptimizer>,
    loss: AsymmetricLoss,
    weighting: WeightingScheme,
    l2: f64,
    phi: Vec<f64>,
    examples: u64,
    cumulative_loss: f64,
    /// Largest `|p|` observed; 0 until the first learning step.
    y_scale: f64,
}

impl OnlineRegression {
    /// A model over `n_features` raw features with the paper's defaults:
    /// degree-2 basis, NAG, λ = [`DEFAULT_L2`].
    pub fn new(n_features: usize, loss: AsymmetricLoss, weighting: WeightingScheme) -> Self {
        let basis = Basis::polynomial(n_features);
        let dim = basis.output_dim();
        Self::with_parts(
            basis,
            Box::new(NagOptimizer::new(dim, DEFAULT_ETA)),
            loss,
            weighting,
            DEFAULT_L2,
        )
    }

    /// Full control over every component (used by the ablation benches).
    pub fn with_parts(
        basis: Basis,
        optimizer: Box<dyn OnlineOptimizer>,
        loss: AsymmetricLoss,
        weighting: WeightingScheme,
        l2: f64,
    ) -> Self {
        let dim = basis.output_dim();
        Self {
            basis,
            weights: vec![0.0; dim],
            optimizer,
            loss,
            weighting,
            l2,
            phi: vec![0.0; dim],
            examples: 0,
            cumulative_loss: 0.0,
            y_scale: 0.0,
        }
    }

    /// Predicts the running time for raw features `x` (seconds; may be
    /// negative or huge before clamping — callers clamp to `[1, p̃]`).
    /// Returns 0 before the first learning step.
    pub fn predict(&mut self, x: &[f64]) -> f64 {
        if self.y_scale == 0.0 {
            return 0.0;
        }
        self.basis.expand_into(x, &mut self.phi);
        dot(&self.weights, &self.phi) * self.y_scale
    }

    /// One on-line learning step on a completed job: features `x`, actual
    /// running time `p` (seconds), resource request `q` (processors, used
    /// by the weighting scheme).
    pub fn learn(&mut self, x: &[f64], p: f64, q: f64) -> LearnRecord {
        // Output normalization (see module docs): grow the target scale
        // and reinterpret past weights at the new scale.
        let magnitude = p.abs().max(1.0);
        if magnitude > self.y_scale {
            if self.y_scale > 0.0 {
                let ratio = self.y_scale / magnitude;
                for w in &mut self.weights {
                    *w *= ratio;
                }
            }
            self.y_scale = magnitude;
        }
        let scale = self.y_scale;

        self.basis.expand_into(x, &mut self.phi);
        self.optimizer.prepare(&mut self.weights, &self.phi);
        let f_hat = dot(&self.weights, &self.phi);
        let f_real = f_hat * scale;
        let gamma = self.weighting.gamma(p, q);
        // Loss and gradient in real seconds (Equation 2's objective);
        // chain rule maps the gradient into the normalized weight space.
        let loss = self.loss.value(f_real, p, gamma);
        let dloss = self.loss.dvalue_df(f_real, p, gamma) * scale;
        // Safeguarded update: this example may pull the prediction at
        // most to its own label (see `OnlineOptimizer::step_bounded`) —
        // without this, one crashed job under a squared loss branch
        // collapses the model.
        let max_df = (f_hat - p / scale).abs();
        self.optimizer
            .step_bounded(&mut self.weights, &self.phi, dloss, self.l2, max_df);
        self.examples += 1;
        self.cumulative_loss += loss;
        LearnRecord {
            prediction: f_real,
            loss,
            gamma,
        }
    }

    /// Number of learning steps taken.
    pub fn examples(&self) -> u64 {
        self.examples
    }

    /// Cumulative (γ-weighted) loss over all learning steps — the
    /// quantity Equation (2) minimizes.
    pub fn cumulative_loss(&self) -> f64 {
        self.cumulative_loss
    }

    /// The current weight vector (expanded-space coordinates).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The configured loss shape.
    pub fn loss(&self) -> AsymmetricLoss {
        self.loss
    }

    /// The configured weighting scheme.
    pub fn weighting(&self) -> WeightingScheme {
        self.weighting
    }

    /// The optimizer's display name.
    pub fn optimizer_name(&self) -> &'static str {
        self.optimizer.name()
    }
}

impl std::fmt::Debug for OnlineRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineRegression")
            .field("dim", &self.weights.len())
            .field("loss", &self.loss)
            .field("weighting", &self.weighting)
            .field("optimizer", &self.optimizer.name())
            .field("examples", &self.examples)
            .finish()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::BasisLoss;

    /// Squared-loss fit of a noiseless linear function of 2 features.
    #[test]
    fn fits_linear_function() {
        let mut m = OnlineRegression::new(2, AsymmetricLoss::SQUARED, WeightingScheme::Constant);
        let truth = |a: f64, b: f64| 100.0 + 50.0 * a + 200.0 * b;
        let mut rel = f64::NAN;
        for i in 0..8000 {
            let a = (i % 13) as f64;
            let b = ((i * 7) % 11) as f64;
            let y = truth(a, b);
            let f = m.predict(&[a, b]);
            if y > 0.0 {
                rel = (f - y).abs() / y;
            }
            m.learn(&[a, b], y, 1.0);
        }
        assert!(rel < 0.05, "relative error {rel}");
        assert_eq!(m.examples(), 8000);
        assert!(m.cumulative_loss() > 0.0);
    }

    /// The degree-2 basis lets the model capture a product dependency.
    #[test]
    fn fits_interaction_term() {
        let mut m = OnlineRegression::new(2, AsymmetricLoss::SQUARED, WeightingScheme::Constant);
        let mut rel = f64::NAN;
        for i in 0..20_000 {
            let a = 1.0 + (i % 7) as f64;
            let b = 1.0 + ((i * 3) % 5) as f64;
            let y = 10.0 * a * b;
            let f = m.predict(&[a, b]);
            rel = (f - y).abs() / y;
            m.learn(&[a, b], y, 1.0);
        }
        assert!(rel < 0.1, "relative error {rel}");
    }

    /// With the E-Loss, systematic residual bias must lean toward
    /// under-prediction: the squared over-branch punishes f > p harder.
    #[test]
    fn eloss_biases_toward_underprediction() {
        let mut m = OnlineRegression::new(1, AsymmetricLoss::E_LOSS, WeightingScheme::Constant);
        // Noisy target: y alternates between 100 and 1900 (mean 1000) for
        // the same input — no model can fit both; the asymmetry decides
        // where the compromise lands.
        let mut preds = Vec::new();
        for i in 0..4000 {
            let y = if i % 2 == 0 { 100.0 } else { 1900.0 };
            let f = m.predict(&[1.0]);
            if i > 3500 {
                preds.push(f);
            }
            m.learn(&[1.0], y, 1.0);
        }
        let mean_pred = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(
            mean_pred < 1000.0,
            "E-loss prediction {mean_pred} should sit below the symmetric mean 1000"
        );

        // Control: symmetric squared loss converges near the mean.
        let mut sym = OnlineRegression::new(1, AsymmetricLoss::SQUARED, WeightingScheme::Constant);
        let mut spreds = Vec::new();
        for i in 0..4000 {
            let y = if i % 2 == 0 { 100.0 } else { 1900.0 };
            let f = sym.predict(&[1.0]);
            if i > 3500 {
                spreds.push(f);
            }
            sym.learn(&[1.0], y, 1.0);
        }
        let sym_mean = spreds.iter().sum::<f64>() / spreds.len() as f64;
        assert!(
            mean_pred < sym_mean,
            "E-loss ({mean_pred}) must predict lower than squared loss ({sym_mean})"
        );
    }

    /// Asymmetry in the other direction (squared under-branch) biases the
    /// model upward.
    #[test]
    fn reverse_asymmetry_biases_upward() {
        let loss = AsymmetricLoss {
            under: BasisLoss::Squared,
            over: BasisLoss::Linear,
        };
        let mut m = OnlineRegression::new(1, loss, WeightingScheme::Constant);
        let mut preds = Vec::new();
        for i in 0..4000 {
            let y = if i % 2 == 0 { 100.0 } else { 1900.0 };
            let f = m.predict(&[1.0]);
            if i > 3500 {
                preds.push(f);
            }
            m.learn(&[1.0], y, 1.0);
        }
        let mean_pred = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(mean_pred > 1000.0, "got {mean_pred}");
    }

    #[test]
    fn weighting_is_applied() {
        let mut m = OnlineRegression::new(1, AsymmetricLoss::SQUARED, WeightingScheme::LargeArea);
        let rec = m.learn(&[1.0], 1000.0, 64.0);
        let expected_gamma = WeightingScheme::LargeArea.gamma(1000.0, 64.0);
        assert!((rec.gamma - expected_gamma).abs() < 1e-12);
        assert!(rec.loss > 0.0);
    }

    #[test]
    fn debug_format_mentions_components() {
        let m = OnlineRegression::new(3, AsymmetricLoss::E_LOSS, WeightingScheme::LargeArea);
        let s = format!("{m:?}");
        assert!(s.contains("nag"));
        assert!(s.contains("LargeArea"));
    }
}
