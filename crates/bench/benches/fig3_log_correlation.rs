//! Figure 3 (§6.3.2): scatter of triple AVEbsld between two logs plus
//! the Pearson aggregate over all log pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::{measure_workload_pair, print_workloads};
use predictsim_experiments::figures::{fig3, render_fig3};
use predictsim_experiments::{campaign_triples, reference_triples, run_campaign};

fn bench(c: &mut Criterion) {
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let campaigns: Vec<_> = print_workloads()
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();
    eprintln!(
        "\n=== Figure 3 (scale {}) ===\n{}",
        predictsim_bench::PRINT_SCALE,
        render_fig3(&fig3(&campaigns, "Metacentrum", "SDSC-BLUE"))
    );

    // Measured: a reduced two-log campaign + scatter assembly.
    let ws = measure_workload_pair();
    let reduced: Vec<_> = campaign_triples().into_iter().take(8).collect();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("two_log_scatter", |b| {
        let loaded: Vec<predictsim_experiments::LoadedWorkload> =
            ws.iter().map(Into::into).collect();
        b.iter(|| {
            predictsim_experiments::SimCache::global().clear_memory();
            let cs: Vec<_> = loaded
                .iter()
                .map(|w| predictsim_experiments::campaign::run_campaign_loaded(w, &reduced))
                .collect();
            std::hint::black_box(fig3(&cs, &ws[0].name, &ws[1].name))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
