//! Figure 4 (§6.4): ECDFs of prediction errors for the four prediction
//! techniques on the Curie stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::measure_workload;
use predictsim_experiments::figures::{fig4_fig5, render_ecdf_series};
use predictsim_experiments::ExperimentSetup;

fn bench(c: &mut Criterion) {
    let curie = ExperimentSetup {
        scale: predictsim_bench::PRINT_SCALE,
        ..ExperimentSetup::quick()
    }
    .workload("curie")
    .map(predictsim_experiments::LoadedWorkload::from)
    .expect("Curie preset");
    let fig = fig4_fig5(&curie, 97);
    eprintln!(
        "\n=== Figure 4 on {} (error quantiles, hours) ===\n{}",
        fig.log,
        render_ecdf_series(&fig.error_series, "h")
    );

    let w: predictsim_experiments::LoadedWorkload = measure_workload().into();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("error_ecdfs", |b| {
        b.iter(|| {
            predictsim_experiments::SimCache::global().clear_memory();
            std::hint::black_box(fig4_fig5(&w, 49).error_series)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
