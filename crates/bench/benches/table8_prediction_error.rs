//! Table 8 (§6.4): MAE and mean E-Loss of AVE2 vs the E-Loss learner on
//! the Curie stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::measure_workload;
use predictsim_experiments::tables::{render_table8, table8};
use predictsim_experiments::ExperimentSetup;

fn bench(c: &mut Criterion) {
    let curie = ExperimentSetup {
        scale: predictsim_bench::PRINT_SCALE,
        ..ExperimentSetup::quick()
    }
    .workload("curie")
    .map(predictsim_experiments::LoadedWorkload::from)
    .expect("Curie preset");
    eprintln!(
        "\n=== Table 8 on {} ===\n{}",
        curie.name,
        render_table8(&table8(&curie))
    );

    let w: predictsim_experiments::LoadedWorkload = measure_workload().into();
    let mut g = c.benchmark_group("table8");
    g.sample_size(10);
    g.bench_function("mae_and_eloss_comparison", |b| {
        b.iter(|| {
            predictsim_experiments::SimCache::global().clear_memory();
            std::hint::black_box(table8(&w))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
