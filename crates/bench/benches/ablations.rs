//! Ablation benches (DESIGN.md §6): scheduler, correction mechanism,
//! optimizer, basis degree and loss shape — printed once, with the
//! scheduler ablation as the measured workload.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::measure_workload;
use predictsim_experiments::ablation::{
    ablate_basis, ablate_correction, ablate_loss, ablate_optimizer, ablate_scheduler,
    render_ablation,
};
use predictsim_experiments::ExperimentSetup;

fn bench(c: &mut Criterion) {
    let w = ExperimentSetup {
        scale: predictsim_bench::PRINT_SCALE,
        ..ExperimentSetup::quick()
    }
    .workload("kth")
    .map(predictsim_experiments::LoadedWorkload::from)
    .expect("KTH preset");
    eprintln!("\n=== Ablations on {} ===", w.name);
    eprintln!(
        "{}",
        render_ablation("Scheduler (clairvoyant)", &ablate_scheduler(&w))
    );
    eprintln!(
        "{}",
        render_ablation("Correction mechanism", &ablate_correction(&w))
    );
    eprintln!("{}", render_ablation("Optimizer", &ablate_optimizer(&w)));
    eprintln!("{}", render_ablation("Basis degree", &ablate_basis(&w)));
    eprintln!(
        "{}",
        render_ablation("Loss shape x weighting", &ablate_loss(&w))
    );

    let small: predictsim_experiments::LoadedWorkload = measure_workload().into();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("scheduler_ablation", |b| {
        b.iter(|| {
            predictsim_experiments::SimCache::global().clear_memory();
            std::hint::black_box(ablate_scheduler(&small))
        })
    });
    g.bench_function("optimizer_ablation", |b| {
        b.iter(|| {
            predictsim_experiments::SimCache::global().clear_memory();
            std::hint::black_box(ablate_optimizer(&small))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
