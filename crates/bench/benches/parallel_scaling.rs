//! Scaling of the campaign runner across pool widths: the same reduced
//! campaign measured at 1, 2, 4, and 8 worker threads. On a
//! multi-core box the wider runs should approach `t(1)/cores`; the
//! printed pool stats confirm the parallel path actually engaged.
//!
//! Three groups:
//!
//! * `campaign` — cold cache per iteration: every cell simulates, so
//!   this tracks end-to-end campaign throughput;
//! * `campaign_warm` — the cache stays hot: every cell is a memory
//!   hit, so this isolates the `SimCache` lookup path itself (with the
//!   sharded cache, widening the pool must not serialize on one lock);
//! * `engine_hetero` — the cold campaign on a 2-partition split
//!   machine, tracking the heterogeneous routing overhead.
//!
//! With `RECORD_SCALING=<path>` set, the bench additionally measures
//! the campaign wall-clock directly (no Criterion sampling) at pool
//! widths 1, 8 and all-cores — cold and warm — and splices the table
//! into `<path>` (normally `EXPERIMENTS.md`) between the
//! `repro:scaling` markers.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predictsim_bench::measure_workload;
use predictsim_experiments::timing::{record_section, SCALING_BEGIN, SCALING_END};
use predictsim_experiments::HeuristicTriple;

fn triples() -> Vec<HeuristicTriple> {
    vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple::clairvoyant(predictsim_experiments::Variant::EasySjbf),
    ]
}

fn bench(c: &mut Criterion) {
    let w = measure_workload();
    let triples = triples();

    let loaded = predictsim_experiments::LoadedWorkload::from(&w);
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    for width in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("campaign", width), &width, |b, &n| {
            b.iter(|| {
                predictsim_experiments::SimCache::global().clear_memory();
                rayon::pool::with_num_threads(n, || {
                    std::hint::black_box(predictsim_experiments::campaign::run_campaign_loaded(
                        &loaded, &triples,
                    ))
                })
            })
        });
    }
    // Warm cache: every cell is already memoized, so the measured work
    // is the concurrent lookup path — shard selection, a short lock,
    // a clone of the aggregate. Before sharding, all widths met at one
    // global mutex here.
    predictsim_experiments::SimCache::global().clear_memory();
    rayon::pool::with_num_threads(1, || {
        predictsim_experiments::campaign::run_campaign_loaded(&loaded, &triples)
    });
    for width in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("campaign_warm", width), &width, |b, &n| {
            b.iter(|| {
                rayon::pool::with_num_threads(n, || {
                    std::hint::black_box(predictsim_experiments::campaign::run_campaign_loaded(
                        &loaded, &triples,
                    ))
                })
            })
        });
    }
    // The same campaign on a 2-partition split machine: the per-instant
    // cost grows with the extra routing pass, so this row tracks the
    // heterogeneous overhead relative to `campaign` above.
    // The main partition matches the KTH machine (m=100) so every job
    // fits; the half-speed overflow partition adds the routing work.
    let cluster: predictsim_sim::ClusterSpec = "cluster:100x1+32x0.5"
        .parse()
        .expect("bench cluster parses");
    for width in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("engine_hetero", width), &width, |b, &n| {
            b.iter(|| {
                predictsim_experiments::SimCache::global().clear_memory();
                rayon::pool::with_num_threads(n, || {
                    std::hint::black_box(predictsim_experiments::campaign::run_campaign_cluster(
                        &loaded, cluster, &triples,
                    ))
                })
            })
        });
    }
    g.finish();

    let stats = rayon::pool::stats();
    eprintln!(
        "pool stats: {} bulk ops ({} parallel), {} items, max {} workers in one op",
        stats.bulk_ops, stats.parallel_ops, stats.items_processed, stats.max_workers_in_one_op
    );

    if let Ok(path) = std::env::var("RECORD_SCALING") {
        record_scaling(&path, &loaded, &triples);
    }
}

/// Directly measured campaign wall-clock (median of 3) at pool widths
/// 1/8/all-cores, cold and warm, spliced into the scaling section of
/// `path`. Unlike the Criterion groups above, this measures the *full*
/// 130-triple grid on the quick-scale KTH workload — the unit of work
/// a real `repro` invocation fans out — so the row durations are large
/// enough for the width comparison to mean something.
fn record_scaling(
    path: &str,
    _loaded: &predictsim_experiments::LoadedWorkload,
    _reduced: &[HeuristicTriple],
) {
    // Cargo runs bench binaries with the package dir as cwd; resolve a
    // relative path against the workspace root so
    // `RECORD_SCALING=EXPERIMENTS.md` lands next to the README.
    let target = {
        let p = std::path::Path::new(path);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(p)
        }
    };
    let w = predictsim_experiments::ExperimentSetup {
        scale: 0.05,
        ..predictsim_experiments::ExperimentSetup::quick()
    }
    .workload("kth")
    .expect("KTH preset exists");
    let loaded = predictsim_experiments::LoadedWorkload::from(&w);
    let triples = predictsim_experiments::campaign_triples();
    let triples = triples.as_slice();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut widths = vec![1usize, 8, cores];
    widths.sort_unstable();
    widths.dedup();

    let cache = predictsim_experiments::SimCache::global();
    let median3 = |f: &dyn Fn()| {
        let mut secs: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        secs[1]
    };

    let mut table = format!(
        "## Campaign scaling across pool widths\n\n\
         Written by `RECORD_SCALING=EXPERIMENTS.md cargo bench --bench \
         parallel_scaling`: the full campaign grid ({} triples on {}, {} \
         jobs) measured directly (median of 3) per pool width on a \
         {cores}-core host. *Cold* clears the in-memory cache each run \
         (every cell simulates, single-flight); *warm* keeps it hot \
         (every cell is a sharded-lookup memory hit).\n\n\
         | pool width | cold campaign (s) | warm campaign (ms) |\n|---|---|---|\n",
        triples.len(),
        loaded.name,
        loaded.jobs.len(),
    );
    for &width in &widths {
        let cold = median3(&|| {
            cache.clear_memory();
            rayon::pool::with_num_threads(width, || {
                std::hint::black_box(predictsim_experiments::campaign::run_campaign_loaded(
                    &loaded, triples,
                ));
            });
        });
        cache.clear_memory();
        rayon::pool::with_num_threads(width, || {
            predictsim_experiments::campaign::run_campaign_loaded(&loaded, triples);
        });
        let warm = median3(&|| {
            rayon::pool::with_num_threads(width, || {
                std::hint::black_box(predictsim_experiments::campaign::run_campaign_loaded(
                    &loaded, triples,
                ));
            });
        });
        table.push_str(&format!("| {width} | {cold:.3} | {:.2} |\n", warm * 1e3));
        eprintln!(
            "scaling width {width}: cold {cold:.3}s warm {:.2}ms",
            warm * 1e3
        );
    }
    match record_section(&target, SCALING_BEGIN, SCALING_END, &table) {
        Ok(()) => eprintln!("recorded scaling table into {}", target.display()),
        Err(e) => eprintln!(
            "could not update {} ({e}); table:\n{table}",
            target.display()
        ),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
