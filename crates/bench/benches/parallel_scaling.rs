//! Scaling of the campaign runner across pool widths: the same reduced
//! campaign measured at 1, 2, 4, and 8 worker threads. On a
//! multi-core box the wider runs should approach `t(1)/cores`; the
//! printed pool stats confirm the parallel path actually engaged.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predictsim_bench::measure_workload;
use predictsim_experiments::HeuristicTriple;

fn bench(c: &mut Criterion) {
    let w = measure_workload();
    let triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple::clairvoyant(predictsim_experiments::Variant::EasySjbf),
    ];

    let loaded = predictsim_experiments::LoadedWorkload::from(&w);
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    for width in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("campaign", width), &width, |b, &n| {
            b.iter(|| {
                predictsim_experiments::SimCache::global().clear_memory();
                rayon::pool::with_num_threads(n, || {
                    std::hint::black_box(predictsim_experiments::campaign::run_campaign_loaded(
                        &loaded, &triples,
                    ))
                })
            })
        });
    }
    // The same campaign on a 2-partition split machine: the per-instant
    // cost grows with the extra routing pass, so this row tracks the
    // heterogeneous overhead relative to `campaign` above.
    // The main partition matches the KTH machine (m=100) so every job
    // fits; the half-speed overflow partition adds the routing work.
    let cluster: predictsim_sim::ClusterSpec = "cluster:100x1+32x0.5"
        .parse()
        .expect("bench cluster parses");
    for width in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("engine_hetero", width), &width, |b, &n| {
            b.iter(|| {
                predictsim_experiments::SimCache::global().clear_memory();
                rayon::pool::with_num_threads(n, || {
                    std::hint::black_box(predictsim_experiments::campaign::run_campaign_cluster(
                        &loaded, cluster, &triples,
                    ))
                })
            })
        });
    }
    g.finish();

    let stats = rayon::pool::stats();
    eprintln!(
        "pool stats: {} bulk ops ({} parallel), {} items, max {} workers in one op",
        stats.bulk_ops, stats.parallel_ops, stats.items_processed, stats.max_workers_in_one_op
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
