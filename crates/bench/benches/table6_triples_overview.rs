//! Table 6 (§6.3.1): the AVEbsld overview over every heuristic triple.
//! Prints the regenerated table over all six logs at bench scale, then
//! measures a reduced campaign as the tracked workload.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::{measure_workload, print_workloads};
use predictsim_experiments::tables::{render_table6, table6};
use predictsim_experiments::{campaign_triples, reference_triples, run_campaign, HeuristicTriple};

fn bench(c: &mut Criterion) {
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let campaigns: Vec<_> = print_workloads()
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();
    eprintln!(
        "\n=== Table 6 (scale {}) ===\n{}",
        predictsim_bench::PRINT_SCALE,
        render_table6(&table6(&campaigns))
    );

    let w = measure_workload();
    let reduced = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ];
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("reduced_campaign", |b| {
        b.iter(|| std::hint::black_box(run_campaign(&w, &reduced)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
