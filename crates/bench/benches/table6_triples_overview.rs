//! Table 6 (§6.3.1): the AVEbsld overview over every heuristic triple.
//! Prints the regenerated table over all six logs at bench scale, then
//! measures a reduced campaign as the tracked workload.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::{measure_workload, print_workloads};
use predictsim_experiments::tables::{render_table6, table6};
use predictsim_experiments::{campaign_triples, reference_triples, run_campaign, HeuristicTriple};

fn bench(c: &mut Criterion) {
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let campaigns: Vec<_> = print_workloads()
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();
    eprintln!(
        "\n=== Table 6 (scale {}) ===\n{}",
        predictsim_bench::PRINT_SCALE,
        render_table6(&table6(&campaigns))
    );

    let w = measure_workload();
    let reduced = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ];
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("reduced_campaign", |b| {
        let loaded = predictsim_experiments::LoadedWorkload::from(&w);
        b.iter(|| {
            // Measure fresh simulations, not cache recalls — on the
            // pre-built arena, so the per-iteration work is simulation.
            predictsim_experiments::SimCache::global().clear_memory();
            std::hint::black_box(predictsim_experiments::campaign::run_campaign_loaded(
                &loaded, &reduced,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
