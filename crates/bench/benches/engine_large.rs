//! Large-workload engine throughput: one full simulation of a deep,
//! high-utilization trace per iteration — the regime the §6 campaigns
//! and full-scale SWF replays live in, where queue depth and running-set
//! size make the kernel's indexed state, incremental availability
//! profile, and allocation-free scheduler passes matter.
//!
//! The recorded numbers (jobs simulated per second, plus an 8-way
//! campaign-style fan-out at pool widths 1 and 8) land in the
//! engine-throughput table of `EXPERIMENTS.md`. CI runs this bench once
//! in smoke mode (`ENGINE_LARGE_SMOKE=1`: 2 samples) to catch
//! order-of-magnitude regressions without paying full sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predictsim_bench::large_workload;
use predictsim_sim::predict::{ClairvoyantPredictor, RequestedTimePredictor};
use predictsim_sim::scheduler::{ConservativeScheduler, EasyScheduler};
use predictsim_sim::simulate;

fn smoke_samples(full: usize) -> usize {
    if std::env::var_os("ENGINE_LARGE_SMOKE").is_some() {
        2
    } else {
        full
    }
}

fn engine_large(c: &mut Criterion) {
    let w = large_workload();
    let cfg = w.sim_config();
    let jobs = w.jobs.len() as u64;

    let mut g = c.benchmark_group("engine_large");
    g.sample_size(smoke_samples(10));
    g.throughput(criterion::Throughput::Elements(jobs));
    g.bench_function("easy_sjbf_clairvoyant", |b| {
        b.iter(|| {
            let mut sched = EasyScheduler::sjbf();
            let mut pred = ClairvoyantPredictor;
            std::hint::black_box(simulate(&w.jobs, cfg, &mut sched, &mut pred, None).unwrap())
        })
    });
    g.bench_function("easy_sjbf_requested", |b| {
        b.iter(|| {
            let mut sched = EasyScheduler::sjbf();
            let mut pred = RequestedTimePredictor;
            std::hint::black_box(simulate(&w.jobs, cfg, &mut sched, &mut pred, None).unwrap())
        })
    });
    g.bench_function("conservative_clairvoyant", |b| {
        b.iter(|| {
            let mut sched = ConservativeScheduler::new();
            let mut pred = ClairvoyantPredictor;
            std::hint::black_box(simulate(&w.jobs, cfg, &mut sched, &mut pred, None).unwrap())
        })
    });

    // Scratch health on this workload: warm passes must not reallocate,
    // and the EASY tie fallback must stay rare (printed, not asserted —
    // the test suite pins the invariant).
    let mut sched = EasyScheduler::sjbf();
    let mut pred = ClairvoyantPredictor;
    simulate(&w.jobs, cfg, &mut sched, &mut pred, None).unwrap();
    let s = sched.stats();
    eprintln!(
        "engine_large scheduler stats: {} passes, {} reallocating, {} slow (tie fallback)",
        s.passes, s.reallocating_passes, s.slow_passes
    );
    g.finish();
}

/// Campaign-style fan-out of the large simulation across the thread
/// pool: 8 independent EASY-SJBF runs at widths 1 and 8. Jobs/sec here
/// is aggregate engine throughput, the number the multi-log campaigns
/// and policy sweeps see.
fn engine_large_fanout(c: &mut Criterion) {
    use rayon::prelude::*;
    let w = large_workload();
    let cfg = w.sim_config();
    let runs = 8usize;

    let mut g = c.benchmark_group("engine_large_fanout");
    g.sample_size(smoke_samples(5));
    g.throughput(criterion::Throughput::Elements(
        w.jobs.len() as u64 * runs as u64,
    ));
    for width in [1usize, 8] {
        g.bench_with_input(BenchmarkId::new("easy_sjbf_x8", width), &width, |b, &n| {
            b.iter(|| {
                rayon::pool::with_num_threads(n, || {
                    let results: Vec<f64> = (0..runs)
                        .collect::<Vec<_>>()
                        .par_iter()
                        .map(|_| {
                            let mut sched = EasyScheduler::sjbf();
                            let mut pred = ClairvoyantPredictor;
                            simulate(&w.jobs, cfg, &mut sched, &mut pred, None)
                                .unwrap()
                                .ave_bsld()
                        })
                        .collect();
                    std::hint::black_box(results)
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, engine_large, engine_large_fanout);
criterion_main!(benches);
