//! Table 1 (§2.2): EASY with requested times vs EASY with exact running
//! times, per log. Prints the regenerated table, then measures the
//! two-simulation comparison on a small log.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::{measure_workload, print_workloads};
use predictsim_experiments::tables::{render_table1, table1};
use predictsim_experiments::{HeuristicTriple, Variant};
use predictsim_sim::SimConfig;

fn bench(c: &mut Criterion) {
    let workloads: Vec<predictsim_experiments::LoadedWorkload> =
        print_workloads().into_iter().map(Into::into).collect();
    let rows = table1(&workloads);
    eprintln!(
        "\n=== Table 1 (scale {}) ===\n{}",
        predictsim_bench::PRINT_SCALE,
        render_table1(&rows)
    );

    let w = measure_workload();
    let cfg = SimConfig::single(w.machine_size);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("easy_vs_clairvoyant", |b| {
        b.iter(|| {
            let easy = HeuristicTriple::standard_easy().run(&w.jobs, cfg).unwrap();
            let clair = HeuristicTriple::clairvoyant(Variant::Easy)
                .run(&w.jobs, cfg)
                .unwrap();
            std::hint::black_box((easy.ave_bsld(), clair.ave_bsld()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
