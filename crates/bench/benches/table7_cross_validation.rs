//! Table 7 (§6.3.3): leave-one-out cross-validated triple selection.
//! Prints the regenerated table over all six logs, then measures the
//! selection step itself (the campaign is the expensive part and is
//! benchmarked by table6).

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_bench::print_workloads;
use predictsim_experiments::tables::{render_table7, table7};
use predictsim_experiments::{campaign_triples, cross_validate, reference_triples, run_campaign};

fn bench(c: &mut Criterion) {
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let campaigns: Vec<_> = print_workloads()
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();
    eprintln!(
        "\n=== Table 7 (scale {}) ===\n{}",
        predictsim_bench::PRINT_SCALE,
        render_table7(&table7(&campaigns))
    );

    let mut g = c.benchmark_group("table7");
    g.bench_function("cross_validation_selection", |b| {
        b.iter(|| std::hint::black_box(cross_validate(&campaigns)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
