//! Engine micro-benchmarks: the hot paths of the simulator and learner,
//! independent of any paper experiment. These are the numbers to watch
//! when optimizing the substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predictsim_bench::measure_workload;
use predictsim_core::basis::PolynomialBasis;
use predictsim_core::features::N_FEATURES;
use predictsim_core::loss::AsymmetricLoss;
use predictsim_core::model::OnlineRegression;
use predictsim_core::weighting::WeightingScheme;
use predictsim_sim::event::{EventKind, EventQueue};
use predictsim_sim::job::JobId;
use predictsim_sim::predict::ClairvoyantPredictor;
use predictsim_sim::scheduler::EasyScheduler;
use predictsim_sim::time::Time;
use predictsim_sim::{simulate, SimConfig};

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(
                        Time(((i * 7919) % 100_000) as i64),
                        EventKind::Submit(JobId(i as u32)),
                    );
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                std::hint::black_box(count)
            })
        });
    }
    g.finish();
}

fn simulation_throughput(c: &mut Criterion) {
    let w = measure_workload();
    let cfg = SimConfig::single(w.machine_size);
    let mut g = c.benchmark_group("simulation");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(w.jobs.len() as u64));
    g.bench_function("easy_sjbf_clairvoyant_jobs_per_sec", |b| {
        b.iter(|| {
            let mut sched = EasyScheduler::sjbf();
            let mut pred = ClairvoyantPredictor;
            std::hint::black_box(simulate(&w.jobs, cfg, &mut sched, &mut pred, None).unwrap())
        })
    });
    g.finish();
}

fn learner_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("learner");
    // One full learn step on the paper's 20-feature degree-2 model.
    g.bench_function("nag_learn_step_231_weights", |b| {
        let mut model = OnlineRegression::new(
            N_FEATURES,
            AsymmetricLoss::E_LOSS,
            WeightingScheme::LargeArea,
        );
        let x: Vec<f64> = (0..N_FEATURES).map(|i| (i as f64 + 1.0) * 3.7).collect();
        b.iter(|| std::hint::black_box(model.learn(&x, 1234.0, 16.0)))
    });
    // Basis expansion alone.
    g.bench_function("polynomial_expansion_20_features", |b| {
        let basis = PolynomialBasis::new(N_FEATURES);
        let x: Vec<f64> = (0..N_FEATURES).map(|i| i as f64).collect();
        let mut out = vec![0.0; basis.output_dim()];
        b.iter(|| {
            basis.expand_into(&x, &mut out);
            std::hint::black_box(out[out.len() - 1])
        })
    });
    g.finish();
}

criterion_group!(benches, event_queue, simulation_throughput, learner_update);
criterion_main!(benches);
