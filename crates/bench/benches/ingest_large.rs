//! Cloud-scale ingestion + heavy-tail engine throughput.
//!
//! Two regimes the SWF-era pipeline never saw:
//!
//! 1. **Ingestion**: a million-job trace streamed off disk. The printed
//!    reproduction loads the full `millions-of-users` preset both ways
//!    — streaming (records become engine jobs as they parse; zero
//!    intermediate record vectors) and buffered (the
//!    parse-everything-then-clean reference path) — asserts they are
//!    byte-identical, and times them. Criterion then measures both
//!    loaders on a scaled copy.
//! 2. **Heavy-tail simulation**: EASY-SJBF over a ≥10^5-*user*
//!    workload, where every per-user touch (running index, user
//!    histories) hits the dense-interned slabs instead of hash maps.
//!
//! The recorded numbers land in the ingestion table and the
//! engine-throughput heavy-tail row of `EXPERIMENTS.md`. CI runs this
//! bench in smoke mode (`INGEST_LARGE_SMOKE=1`: 2 samples, 2% scale)
//! to catch order-of-magnitude regressions cheaply.

use criterion::{criterion_group, criterion_main, Criterion};
use predictsim_core::{Ave2Predictor, IncrementalCorrection, MlPredictor};
use predictsim_experiments::{SwfSource, WorkloadSource};
use predictsim_sim::scheduler::EasyScheduler;
use predictsim_sim::{simulate, RuntimePredictor};
use predictsim_workload::presets::millions_of_users;
use predictsim_workload::{generate, GeneratedWorkload};

fn smoke() -> bool {
    std::env::var_os("INGEST_LARGE_SMOKE").is_some()
}

fn smoke_samples(full: usize) -> usize {
    if smoke() {
        2
    } else {
        full
    }
}

/// The full cloud-scale stressor (1M jobs, 400k users) — or a 2% copy
/// in smoke mode.
fn full_workload() -> GeneratedWorkload {
    let spec = if smoke() {
        millions_of_users().scaled(0.02)
    } else {
        millions_of_users()
    };
    generate(&spec, 20150101)
}

/// A scaled copy for Criterion's repeated sampling (the full trace is
/// only loaded/simulated once each, in the printed reproduction).
fn measure_workload() -> GeneratedWorkload {
    let scale = if smoke() { 0.01 } else { 0.05 };
    generate(&millions_of_users().scaled(scale), 20150101)
}

fn write_swf(w: &GeneratedWorkload, name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, predictsim_swf::write_log(&w.to_swf())).expect("write swf");
    path
}

fn ingest_large(c: &mut Criterion) {
    // Printed reproduction: the full-size trace, loaded once each way.
    let w = full_workload();
    let path = write_swf(&w, "predictsim_ingest_large_full.swf");
    let mbytes = std::fs::metadata(&path).expect("stat").len() as f64 / 1e6;

    let t = std::time::Instant::now();
    let streamed = SwfSource::new(&path).load().expect("stream load");
    let stream_secs = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let eager = SwfSource::new(&path)
        .with_eager()
        .load()
        .expect("eager load");
    let eager_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        &streamed.jobs[..],
        &eager.jobs[..],
        "streaming and buffered loads must be byte-identical"
    );
    assert_eq!(
        streamed.stats.buffered_records, 0,
        "streaming must not buffer"
    );
    let jobs = streamed.jobs.len();
    eprintln!(
        "ingest_large: {jobs} jobs / {} users / {mbytes:.1} MB swf; \
         stream {stream_secs:.2}s ({:.0} kjobs/s, record_vecs=0), \
         eager {eager_secs:.2}s ({:.0} kjobs/s, {} buffered records)",
        streamed.jobs.user_count(),
        jobs as f64 / stream_secs / 1e3,
        jobs as f64 / eager_secs / 1e3,
        eager.stats.buffered_records,
    );
    std::fs::remove_file(&path).ok();

    // Measured: both loaders on the scaled copy.
    let small = measure_workload();
    let small_path = write_swf(&small, "predictsim_ingest_large_measure.swf");
    let mut g = c.benchmark_group("ingest_large");
    g.sample_size(smoke_samples(10));
    g.throughput(criterion::Throughput::Elements(small.jobs.len() as u64));
    g.bench_function("stream_load", |b| {
        b.iter(|| std::hint::black_box(SwfSource::new(&small_path).load().unwrap()))
    });
    g.bench_function("eager_load", |b| {
        b.iter(|| std::hint::black_box(SwfSource::new(&small_path).with_eager().load().unwrap()))
    });
    g.finish();
    std::fs::remove_file(&small_path).ok();
}

fn heavy_tail_engine(c: &mut Criterion) {
    // Printed reproduction: EASY-SJBF over the full heavy-tail trace,
    // once per predictor — the engine-throughput rows for EXPERIMENTS.md.
    let w = full_workload();
    let cfg = w.sim_config();
    eprintln!(
        "heavy_tail workload: {} jobs, {} active users, machine {}",
        w.jobs.len(),
        w.stats.active_users,
        w.machine_size
    );
    let run = |label: &str, pred: &mut dyn RuntimePredictor| {
        let corr = IncrementalCorrection::new();
        let t = std::time::Instant::now();
        let bsld = simulate(&w.jobs, cfg, &mut EasyScheduler::sjbf(), pred, Some(&corr))
            .unwrap()
            .ave_bsld();
        let secs = t.elapsed().as_secs_f64();
        eprintln!(
            "heavy_tail {label}: {secs:.1}s ({:.0} kjobs/s), AVEbsld {bsld:.2}",
            w.jobs.len() as f64 / secs / 1e3
        );
    };
    run("easy_sjbf_ave2", &mut Ave2Predictor::new());
    run("easy_sjbf_eloss", &mut MlPredictor::e_loss());

    // Measured: the scaled copy under Criterion.
    let small = measure_workload();
    let small_cfg = small.sim_config();
    let mut g = c.benchmark_group("engine_heavy_tail");
    g.sample_size(smoke_samples(10));
    g.throughput(criterion::Throughput::Elements(small.jobs.len() as u64));
    g.bench_function("easy_sjbf_ave2", |b| {
        b.iter(|| {
            let mut pred = Ave2Predictor::new();
            let corr = IncrementalCorrection::new();
            std::hint::black_box(
                simulate(
                    &small.jobs,
                    small_cfg,
                    &mut EasyScheduler::sjbf(),
                    &mut pred,
                    Some(&corr),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, ingest_large, heavy_tail_engine);
criterion_main!(benches);
