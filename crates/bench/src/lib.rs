//! # predictsim-bench
//!
//! Criterion benchmark harness for *predictsim-rs*: one bench target per
//! table and figure of the paper, plus engine micro-benchmarks.
//!
//! Every table/figure bench does two things:
//!
//! 1. **regenerates the experiment once** at bench scale and prints the
//!    rows/series to stderr (so `cargo bench` doubles as a smoke
//!    reproduction);
//! 2. **measures** the end-to-end computation with Criterion on small
//!    workloads, tracking the performance of the simulator + learner
//!    stack over time.
//!
//! Full-size reproductions belong to the `repro` binary
//! (`cargo run --release -p predictsim --bin repro -- all`).

#![forbid(unsafe_code)]

use predictsim_experiments::ExperimentSetup;
use predictsim_workload::GeneratedWorkload;

/// Scale used for the printed reproduction inside benches.
pub const PRINT_SCALE: f64 = 0.02;

/// Scale used for the measured iterations (kept small so Criterion's
/// repeated sampling stays fast).
pub const MEASURE_SCALE: f64 = 0.005;

/// Workloads for the printed reproduction (all six logs).
pub fn print_workloads() -> Vec<GeneratedWorkload> {
    ExperimentSetup {
        scale: PRINT_SCALE,
        ..ExperimentSetup::quick()
    }
    .workloads()
}

/// A single small workload for the measured iterations.
pub fn measure_workload() -> GeneratedWorkload {
    ExperimentSetup {
        scale: MEASURE_SCALE,
        ..ExperimentSetup::quick()
    }
    .workload("kth")
    .expect("KTH preset exists")
}

/// A large, high-utilization workload for the engine-throughput
/// benchmark (`engine_large`): deep queues and a big running set, the
/// regime where the kernel's indexed state and incremental availability
/// profile matter. ~24k jobs on a KTH-sized machine.
pub fn large_workload() -> GeneratedWorkload {
    let mut spec = predictsim_workload::WorkloadSpec::toy();
    spec.name = "engine-large".into();
    spec.machine_size = 128;
    spec.jobs = 24_000;
    spec.duration = 120 * 86_400;
    spec.utilization = 0.93;
    spec.users = 80;
    predictsim_workload::generate(&spec, 20150115)
}

/// Two small workloads (for cross-log experiments).
pub fn measure_workload_pair() -> Vec<GeneratedWorkload> {
    let setup = ExperimentSetup {
        scale: MEASURE_SCALE,
        ..ExperimentSetup::quick()
    };
    vec![
        setup.workload("kth").expect("KTH preset"),
        setup.workload("sdsc-sp2").expect("SDSC-SP2 preset"),
    ]
}
