//! `repro` — regenerate every table and figure of the paper, or run any
//! single scenario by registry name.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS
//!   table1     EASY vs EASY-Clairvoyant per log           (§2.2, Table 1)
//!   table6     AVEbsld overview of all heuristic triples  (§6.3, Table 6)
//!   table7     cross-validated triple selection           (§6.3, Table 7)
//!   table8     MAE vs mean E-Loss on Curie                (§6.4, Table 8)
//!   fig3       inter-log scatter + Pearson aggregate      (§6.3, Figure 3)
//!   fig4       ECDF of prediction errors on Curie         (§6.4, Figure 4)
//!   fig5       ECDF of predicted values on Curie          (§6.4, Figure 5)
//!   ablation   scheduler/correction/optimizer/basis/loss ablations
//!   all        everything above (campaigns are shared)
//!   scenario   one simulation picked by the policy flags below
//!   serve      long-running simulation daemon (newline-delimited JSON
//!              over TCP; see the `predictsim-serve` crate docs)
//!
//! OPTIONS
//!   --scale F        preset scale factor (default 0.05; 1.0 = full Table 4)
//!   --full           the resumable full-scale run: --scale 1.0 composed
//!                    with --cache (default dir repro-cache), --prune and
//!                    --progress — kill it and relaunch to resume
//!   --seed N         workload generation seed (default 20150101)
//!   --out DIR        also write JSON artifacts (campaigns, figures) to DIR
//!   --threads N      pin the worker-pool width (default: RAYON_NUM_THREADS
//!                    or the machine's parallelism)
//!   --timing         record per-phase wall-clock into EXPERIMENTS.md
//!   --cache DIR      persist simulated cells to DIR; later runs reuse them
//!   --cache-budget B size budget for the cache dir in bytes (K/M/G
//!                    suffixes; default 8G); LRU cells past it are evicted
//!   --progress       per-cell progress lines on stderr (a resume journal)
//!   --prune          early-abort dominated campaign triples (sweep mode)
//!   --list           print every registered scheduler/predictor/correction
//!
//! SCENARIO OPTIONS (with the `scenario` experiment)
//!   --swf FILE       simulate this SWF log instead of a synthetic preset
//!   --log NAME       synthetic Table 4 preset to use (prefix match;
//!                    default: the first, KTH-SP2)
//!   --scheduler S    registry name, e.g. easy, easy-sjbf   (default easy)
//!   --predictor P    registry name, e.g. ave2, ml:u=lin,o=sq,g=area
//!                    (default requested)
//!   --correction C   registry name, e.g. incremental       (default none)
//!   --cluster SPEC   place the workload on this cluster: `64` (one
//!                    homogeneous machine) or `cluster:64x1+32x0.5`
//!                    (ordered partitions, first-fit routing;
//!                    default: the workload's own machine)
//!
//! SERVE OPTIONS (with the `serve` experiment)
//!   --listen ADDR      bind address (default 127.0.0.1:0, ephemeral)
//!   --serve-workers N  simulation worker threads (default: --threads
//!                      or 2)
//!   --serve-queue N    queued-submission bound before `busy` (16)
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use predictsim_experiments::ablation;
use predictsim_experiments::cache::SimCache;
use predictsim_experiments::campaign::{
    run_campaign_loaded, run_campaign_pruned, CampaignResult, TripleResult,
};
use predictsim_experiments::context::{ExperimentSetup, DEFAULT_SEED, QUICK_SCALE};
use predictsim_experiments::figures::{fig3, fig4_fig5, render_ecdf_series, render_fig3};
use predictsim_experiments::registry::render_registry;
use predictsim_experiments::scenario::Scenario;
use predictsim_experiments::source::{LoadedWorkload, SwfSource, SyntheticSource, WorkloadSource};
use predictsim_experiments::tables::{
    render_table1, render_table6, render_table7, render_table8, table1, table6, table7, table8,
};
use predictsim_experiments::timing::{record_timing, PhaseTimer};
use predictsim_experiments::triple::{campaign_triples, reference_triples, HeuristicTriple};

struct Options {
    setup: ExperimentSetup,
    out_dir: Option<std::path::PathBuf>,
    experiments: Vec<String>,
    threads: Option<usize>,
    timing: bool,
    cache_dir: Option<std::path::PathBuf>,
    cache_budget: Option<u64>,
    progress: bool,
    prune: bool,
    swf: Option<std::path::PathBuf>,
    log: Option<String>,
    scheduler: Option<String>,
    predictor: Option<String>,
    correction: Option<String>,
    cluster: Option<String>,
    listen: Option<String>,
    serve_workers: Option<usize>,
    serve_queue: Option<usize>,
}

/// Set by the SIGINT handler; everything else happens on normal
/// threads (the handler itself must stay async-signal-safe).
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn note_sigint(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Routes SIGINT to [`note_sigint`] so an interrupted run can flush
/// the persistent cache index (batch) or drain the daemon (serve)
/// instead of dying mid-write.
fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, note_sigint);
        }
    }
}

/// Parses a byte count with an optional `K`/`M`/`G` (binary) suffix.
fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.trim();
    let (digits, unit) = match v.chars().last()? {
        'k' | 'K' => (&v[..v.len() - 1], 1024u64),
        'm' | 'M' => (&v[..v.len() - 1], 1024 * 1024),
        'g' | 'G' => (&v[..v.len() - 1], 1024 * 1024 * 1024),
        _ => (v, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(unit)
}

fn parse_args() -> Result<Options, String> {
    let mut setup = ExperimentSetup {
        scale: QUICK_SCALE,
        seed: DEFAULT_SEED,
    };
    let mut out_dir = None;
    let mut experiments = Vec::new();
    let mut threads = None;
    let mut timing = false;
    let mut cache_dir = None;
    let mut cache_budget = None;
    let mut progress = false;
    let mut full = false;
    let mut prune = false;
    let mut swf = None;
    let mut log = None;
    let mut scheduler = None;
    let mut predictor = None;
    let mut correction = None;
    let mut cluster = None;
    let mut listen = None;
    let mut serve_workers = None;
    let mut serve_queue = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => experiments.push("list".into()),
            "--swf" => {
                swf = Some(std::path::PathBuf::from(
                    args.next().ok_or("--swf needs a file path")?,
                ));
            }
            "--log" => log = Some(args.next().ok_or("--log needs a preset name")?),
            "--scheduler" => {
                scheduler = Some(args.next().ok_or("--scheduler needs a registry name")?);
            }
            "--predictor" => {
                predictor = Some(args.next().ok_or("--predictor needs a registry name")?);
            }
            "--correction" => {
                correction = Some(args.next().ok_or("--correction needs a registry name")?);
            }
            "--cluster" => {
                cluster = Some(args.next().ok_or("--cluster needs a spec")?);
            }
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                setup.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--full" => {
                setup.scale = 1.0;
                full = true;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                setup.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                out_dir = Some(std::path::PathBuf::from(
                    args.next().ok_or("--out needs a directory")?,
                ));
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--timing" => timing = true,
            "--cache" => {
                cache_dir = Some(std::path::PathBuf::from(
                    args.next().ok_or("--cache needs a directory")?,
                ));
            }
            "--cache-budget" => {
                let v = args.next().ok_or("--cache-budget needs a byte count")?;
                cache_budget =
                    Some(parse_bytes(&v).ok_or(format!("bad byte count {v:?} (try 512M, 8G)"))?);
            }
            "--progress" => progress = true,
            "--prune" => prune = true,
            "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
            "--serve-workers" => {
                let v = args.next().ok_or("--serve-workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                if n == 0 {
                    return Err("--serve-workers must be at least 1".into());
                }
                serve_workers = Some(n);
            }
            "--serve-queue" => {
                let v = args.next().ok_or("--serve-queue needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad queue depth {v:?}"))?;
                if n == 0 {
                    return Err("--serve-queue must be at least 1".into());
                }
                serve_queue = Some(n);
            }
            "--help" | "-h" => {
                experiments.clear();
                experiments.push("help".into());
                break;
            }
            other if !other.starts_with('-') => experiments.push(other.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    // Scenario flags without an experiment imply a single scenario run;
    // with other experiments named they would be silently dead, so that
    // is an error rather than a surprise.
    let scenario_flags = swf.is_some()
        || log.is_some()
        || scheduler.is_some()
        || predictor.is_some()
        || correction.is_some()
        || cluster.is_some();
    if scenario_flags && experiments.is_empty() {
        experiments.push("scenario".into());
    } else if scenario_flags && !experiments.iter().any(|e| e == "scenario" || e == "help") {
        return Err(
            "--swf/--log/--scheduler/--predictor/--correction/--cluster only apply to \
             the `scenario` experiment; add `scenario` to the experiment list"
                .into(),
        );
    }
    // Same rule for the serve flags: they only configure the daemon.
    let serve_flags = listen.is_some() || serve_workers.is_some() || serve_queue.is_some();
    if serve_flags && experiments.is_empty() {
        experiments.push("serve".into());
    } else if serve_flags && !experiments.iter().any(|e| e == "serve" || e == "help") {
        return Err(
            "--listen/--serve-workers/--serve-queue only apply to the `serve` experiment; \
             run `repro serve`"
                .into(),
        );
    }
    if experiments.iter().any(|e| e == "serve") && experiments.len() > 1 {
        return Err("`serve` runs alone; drop the other experiments".into());
    }
    if experiments.is_empty() {
        experiments.push("help".into());
    }
    // `--full` is the one-command resumable full-scale run: it composes
    // the persistent cache (default directory `repro-cache` unless
    // `--cache` names one), the dominated-triple prune sweep and the
    // per-cell progress journal, so a killed run can be relaunched and
    // resumes from the cells it already wrote.
    if full {
        progress = true;
        prune = true;
        if cache_dir.is_none() {
            cache_dir = Some(std::path::PathBuf::from("repro-cache"));
        }
    }
    Ok(Options {
        setup,
        out_dir,
        experiments,
        threads,
        timing,
        cache_dir,
        cache_budget,
        progress,
        prune,
        swf,
        log,
        scheduler,
        predictor,
        correction,
        cluster,
        listen,
        serve_workers,
        serve_queue,
    })
}

fn write_json<T: serde::Serialize>(dir: &Option<std::path::PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create --out directory");
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path).expect("create artifact file");
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    file.write_all(json.as_bytes()).expect("write artifact");
    println!("  wrote {}", path.display());
}

/// One log's campaign timing + cache effectiveness, for the `--timing`
/// breakdown.
struct CampaignLogStat {
    log: String,
    secs: f64,
    simulated: u64,
    hits: u64,
    pruned: usize,
}

/// Campaigns (128 triples + 2 clairvoyant references per log) are the
/// expensive shared input of table6/table7/fig3; compute them once —
/// through the process-wide simulation cache, and with dominated-triple
/// pruning when `--prune` is given.
fn campaigns(
    workloads: &[LoadedWorkload],
    prune: bool,
    stats_out: &mut Vec<CampaignLogStat>,
) -> Vec<CampaignResult> {
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let cache = SimCache::global();
    let mut pruned_anywhere = std::collections::HashSet::new();
    let mut results: Vec<CampaignResult> = workloads
        .iter()
        .map(|w| {
            let t0 = Instant::now();
            let before = cache.stats();
            let (c, pruned) = if prune {
                let p = run_campaign_pruned(w, &triples);
                let count = p.pruned.len();
                pruned_anywhere.extend(p.pruned);
                (p.campaign, count)
            } else {
                (run_campaign_loaded(w, &triples), 0)
            };
            let delta = cache.stats().since(before);
            let secs = t0.elapsed().as_secs_f64();
            eprintln!(
                "  campaign {}: {} triples x {} jobs in {:.1}s ({} simulated, {} cache hits{})",
                c.log,
                c.results.len(),
                c.jobs,
                secs,
                delta.simulated,
                delta.hits(),
                if prune {
                    format!(", {pruned} pruned")
                } else {
                    String::new()
                },
            );
            stats_out.push(CampaignLogStat {
                log: c.log.clone(),
                secs,
                simulated: delta.simulated,
                hits: delta.hits(),
                pruned,
            });
            c
        })
        .collect();
    // Sweep mode reports only exact numbers: cells pruned on *any* log
    // leave every campaign (their recorded metrics are lower bounds,
    // not values), keeping the downstream tables, figures and the
    // cross-validated selection on fully simulated triples — with a
    // consistent triple set across logs, which the leave-one-out
    // selection requires. Per-log winners are unaffected (a pruned
    // triple is, by construction, dominated on the log that pruned it).
    if prune && !pruned_anywhere.is_empty() {
        eprintln!(
            "  pruning: {} of {} triples dominated somewhere; reporting the rest",
            pruned_anywhere.len(),
            triples.len(),
        );
        for c in &mut results {
            c.results.retain(|r| !pruned_anywhere.contains(&r.triple));
        }
    }
    results
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\nrun `repro --help` for usage");
            std::process::exit(2);
        }
    };
    if opts.experiments.iter().any(|e| e == "help") {
        print!("{USAGE}");
        return;
    }
    if opts.experiments.iter().any(|e| e == "list") {
        print!("{}", render_registry());
        if opts.experiments.iter().all(|e| e == "list") {
            return;
        }
    }
    predictsim_experiments::progress::set_enabled(opts.progress);
    // Announce a REPRO_FAULTS plan up front: a chaos run must never be
    // mistaken for a clean one when comparing artifacts.
    if let Some(plan) = predictsim_experiments::faultline::active_summary() {
        eprintln!("fault injection active (REPRO_FAULTS): {plan}");
    }
    if let Some(dir) = &opts.cache_dir {
        SimCache::global().set_persist_dir(Some(dir.clone()));
        eprintln!("persistent simulation cache: {}", dir.display());
    }
    if let Some(bytes) = opts.cache_budget {
        SimCache::global().set_disk_budget(bytes);
        eprintln!("persistent cache budget: {bytes} bytes");
    }
    install_sigint_handler();
    if opts.experiments.iter().any(|e| e == "serve") {
        run_serve(&opts);
        return;
    }
    // Batch mode: a watcher thread turns the SIGINT flag into an
    // orderly exit — flush the persistent cache index and sweep this
    // process's temp files so a `--cache` run killed mid-campaign
    // resumes from every cell already simulated.
    std::thread::spawn(|| loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            eprintln!("\ninterrupted: flushing the persistent cache index");
            SimCache::global().flush_persistent();
            std::process::exit(130);
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
    match opts.threads {
        // The override is thread-local; every fan-out in `run` starts
        // from this thread, so the whole pipeline inherits the width.
        Some(n) => rayon::pool::with_num_threads(n, || run(&opts)),
        None => run(&opts),
    }
}

/// `repro serve` — start the simulation daemon and run until SIGINT,
/// then drain: reject queued jobs, cancel in-flight simulations, and
/// flush the persistent cache index.
fn run_serve(opts: &Options) {
    let mut cfg = predictsim_serve::ServeConfig::default();
    if let Some(addr) = &opts.listen {
        cfg.addr = addr.clone();
    }
    if let Some(n) = opts.serve_workers {
        cfg.workers = n;
    } else if let Some(n) = opts.threads {
        cfg.workers = n;
    }
    if let Some(n) = opts.serve_queue {
        cfg.queue_depth = n;
    }
    let server = match predictsim_serve::Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start the daemon: {e}");
            std::process::exit(2);
        }
    };
    // The smoke test and scripted clients scrape this line for the
    // resolved (possibly ephemeral) port; keep its shape stable.
    eprintln!("repro serve: listening on {}", server.addr());
    while !INTERRUPTED.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!(
        "repro serve: draining ({} job(s) in flight)",
        server.active_jobs()
    );
    server.shutdown();
    eprintln!("repro serve: cache index flushed, bye");
}

/// Runs one scenario picked entirely by registry names — the Scenario
/// API as a command line.
fn run_scenario(opts: &Options, timer: &mut PhaseTimer) {
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {e}\nrun `repro --list` for the registered policy names");
        std::process::exit(2);
    };
    let source: Box<dyn WorkloadSource + Send> = match &opts.swf {
        Some(path) => Box::new(SwfSource::new(path)),
        None => {
            let spec = match &opts.log {
                Some(name) => opts
                    .setup
                    .spec(name)
                    .unwrap_or_else(|| fail(&format!("no Table 4 preset matches {name:?}"))),
                None => opts
                    .setup
                    .specs()
                    .into_iter()
                    .next()
                    .expect("presets exist"),
            };
            Box::new(SyntheticSource::new(spec, opts.setup.seed))
        }
    };
    let mut builder = Scenario::builder().workload(source);
    if let Some(s) = &opts.scheduler {
        builder = builder.scheduler(s);
    }
    if let Some(p) = &opts.predictor {
        builder = builder.predictor(p);
    }
    if let Some(c) = &opts.correction {
        builder = builder.correction(c);
    }
    if let Some(c) = &opts.cluster {
        builder = builder.cluster(c);
    }
    let mut scenario = builder.build().unwrap_or_else(|e| fail(&e));

    println!("## Scenario — {}\n", scenario.name());
    let loaded = timer.time("scenario workload load", || scenario.load_workload());
    let loaded = loaded.unwrap_or_else(|e| fail(&e));
    eprintln!(
        "  loaded {}: {} jobs, m={}",
        loaded.name,
        loaded.jobs.len(),
        loaded.machine_size
    );
    if let Some(report) = &loaded.cleaning {
        eprintln!(
            "  cleaning: kept {} | dropped {} unrunnable, {} oversize | repaired {} estimates, {} inversions",
            report.kept,
            report.dropped_unrunnable,
            report.dropped_oversize,
            report.repaired_estimates,
            report.repaired_inversions,
        );
    }
    // Ingestion accounting: the streaming loader must report zero
    // intermediate record vectors (CI pins this through --timing).
    let record_vecs = usize::from(loaded.stats.buffered_records > 0);
    eprintln!(
        "  ingest: {} · record_vecs={record_vecs} ({} buffered records) · {} users",
        if loaded.stats.streamed {
            "streamed"
        } else {
            "buffered"
        },
        loaded.stats.buffered_records,
        loaded.jobs.user_count(),
    );
    timer.note(format!(
        "scenario ingest: {} jobs · record_vecs={record_vecs} · {} interned users",
        loaded.jobs.len(),
        loaded.jobs.user_count(),
    ));
    let config = match scenario.cluster() {
        Some(cluster) => {
            eprintln!("  cluster: {cluster} ({} procs)", cluster.total_procs());
            predictsim_sim::SimConfig { cluster }
        }
        None => loaded.sim_config(),
    };
    let result = timer.time("scenario simulation", || {
        scenario.run_on(&loaded.jobs, config)
    });
    let result = result.unwrap_or_else(|e| fail(&e));
    let summary = TripleResult::from_sim(scenario.triple(), &result);
    println!("| metric | value |\n|---|---|");
    println!(
        "| workload | {} ({} jobs, m={}) |",
        loaded.name,
        loaded.jobs.len(),
        loaded.machine_size
    );
    println!("| AVEbsld | {:.2} |", summary.ave_bsld);
    println!("| max bsld | {:.1} |", summary.max_bsld);
    println!("| mean wait | {:.0} s |", summary.mean_wait);
    println!("| utilization | {:.1}% |", 100.0 * summary.utilization);
    println!("| corrections | {} |", summary.corrections);
    println!("| prediction MAE | {:.0} s |", summary.mae);
    println!();
    write_json(&opts.out_dir, "scenario.json", &summary);
}

fn run(opts: &Options) {
    // `all` covers the paper pipeline; `scenario` and `list` only run
    // when named explicitly.
    let wants = |name: &str| {
        opts.experiments
            .iter()
            .any(|e| e == name || (e == "all" && name != "scenario" && name != "list"))
    };
    let needs_campaigns = wants("table6") || wants("table7") || wants("fig3");
    let needs_presets = [
        "table1", "table6", "table7", "table8", "fig3", "fig4", "fig5",
    ]
    .iter()
    .any(|e| wants(e))
        || wants("ablation");
    let threads = rayon::current_num_threads();

    println!(
        "# predictsim repro — scale {}, seed {}, {} pool thread(s)\n",
        opts.setup.scale, opts.setup.seed, threads
    );
    let mut timer = PhaseTimer::new();

    if wants("scenario") {
        run_scenario(opts, &mut timer);
    }

    // Generate once, then load into shared fingerprinted arenas: every
    // experiment below reads the same `LoadedWorkload`s, so the per-log
    // fingerprint is computed exactly once and no fan-out ever clones a
    // job vector.
    let workloads: Vec<LoadedWorkload> = if needs_presets {
        timer.time("workload generation", || {
            opts.setup
                .workloads()
                .into_iter()
                .map(|w| {
                    eprintln!(
                        "  generated {}: {} jobs, m={}, offered util {:.2}",
                        w.name,
                        w.jobs.len(),
                        w.machine_size,
                        w.stats.offered_utilization
                    );
                    LoadedWorkload::from(w)
                })
                .collect()
        })
    } else {
        Vec::new()
    };

    if wants("table1") {
        println!("## Table 1 — EASY vs EASY-Clairvoyant (§2.2)\n");
        let rows = timer.time("table1", || table1(&workloads));
        println!("{}", render_table1(&rows));
        write_json(&opts.out_dir, "table1.json", &rows);
    }

    let campaign_results = if needs_campaigns {
        eprintln!(
            "running campaigns ({} sims/log{})...",
            campaign_triples().len() + 2,
            if opts.prune { ", pruning" } else { "" },
        );
        let mut per_log = Vec::new();
        let cs = timer.time("campaigns", || {
            campaigns(&workloads, opts.prune, &mut per_log)
        });
        for stat in per_log {
            timer.record(&format!("campaigns · {}", stat.log), stat.secs);
            timer.note(format!(
                "campaigns · {}: {} cells simulated, {} cache hits{}",
                stat.log,
                stat.simulated,
                stat.hits,
                if opts.prune {
                    format!(", {} pruned", stat.pruned)
                } else {
                    String::new()
                },
            ));
        }
        write_json(&opts.out_dir, "campaigns.json", &cs);
        Some(cs)
    } else {
        None
    };

    if wants("table6") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        println!("## Table 6 — AVEbsld overview (§6.3.1)\n");
        let rows = timer.time("table6", || table6(cs));
        println!("{}", render_table6(&rows));
        write_json(&opts.out_dir, "table6.json", &rows);
    }

    if wants("table7") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        println!("## Table 7 — cross-validated triple selection (§6.3.3)\n");
        let outcome = timer.time("table7 (cross-validation)", || table7(cs));
        println!("{}", render_table7(&outcome));
        write_json(&opts.out_dir, "table7.json", &outcome);
    }

    if wants("fig3") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        println!("## Figure 3 — inter-log correlation (§6.3.2)\n");
        let fig = timer.time("fig3", || fig3(cs, "Metacentrum", "SDSC-BLUE"));
        println!("{}", render_fig3(&fig));
        write_json(&opts.out_dir, "fig3.json", &fig);
    }

    if wants("table8") || wants("fig4") || wants("fig5") {
        let curie = workloads
            .iter()
            .find(|w| w.name.starts_with("Curie"))
            .expect("Curie preset present");
        if wants("table8") {
            println!("## Table 8 — MAE vs mean E-Loss on {} (§6.4)\n", curie.name);
            let rows = timer.time("table8", || table8(curie));
            println!("{}", render_table8(&rows));
            write_json(&opts.out_dir, "table8.json", &rows);
        }
        if wants("fig4") || wants("fig5") {
            let fig = timer.time("fig4+fig5", || fig4_fig5(curie, 193));
            if wants("fig4") {
                println!(
                    "## Figure 4 — ECDF of prediction errors on {} (§6.4)\n",
                    fig.log
                );
                println!("{}", render_ecdf_series(&fig.error_series, "h"));
            }
            if wants("fig5") {
                println!(
                    "## Figure 5 — ECDF of predicted values on {} (§6.4)\n",
                    fig.log
                );
                println!("{}", render_ecdf_series(&fig.value_series, "h"));
            }
            write_json(&opts.out_dir, "fig4_fig5.json", &fig);
        }
    }

    if wants("ablation") {
        let w = workloads.first().expect("at least one workload");
        println!("## Ablations (on {})\n", w.name);
        let ablations = timer.time("ablations", || {
            [
                ("Scheduler (clairvoyant)", ablation::ablate_scheduler(w)),
                (
                    "Correction mechanism (E-Loss learner)",
                    ablation::ablate_correction(w),
                ),
                ("Optimizer", ablation::ablate_optimizer(w)),
                ("Basis degree", ablation::ablate_basis(w)),
                ("Loss shape x weighting", ablation::ablate_loss(w)),
            ]
        });
        for (title, rows) in ablations {
            println!("{}", ablation::render_ablation(title, &rows));
            write_json(
                &opts.out_dir,
                &format!(
                    "ablation_{}.json",
                    title.split(' ').next().expect("word").to_lowercase()
                ),
                &rows,
            );
        }
    }

    // Close with the headline comparison so `repro all` ends on the
    // paper's summary numbers.
    if wants("table7") {
        let cs = campaign_results.as_ref().expect("campaigns computed");
        let outcome = table7(cs);
        println!("---");
        println!(
            "Headline: C-V triple reduces AVEbsld by {:.0}% vs EASY (paper: 28%), {:.0}% vs EASY++ (paper: 11%), max {:.0}% (paper: 86%).",
            outcome.mean_reduction_vs_easy(),
            outcome.mean_reduction_vs_easypp(),
            outcome.max_reduction_vs_easy(),
        );
        println!(
            "Paper's winning triple: {}; ours: {}.",
            HeuristicTriple::paper_winner().name(),
            outcome.global_winner
        );
    }

    let cache_stats = SimCache::global().stats();
    // The summary line is append-only (pinned by a format test): the CI
    // cache smokes anchor on the `simulated=` prefix and grep
    // individual ` key=` fields.
    eprintln!("{}", cache_stats.summary_line());
    timer.note(format!(
        "cache totals: {} cells simulated, {} memory hits, {} disk hits",
        cache_stats.simulated, cache_stats.memory_hits, cache_stats.disk_hits
    ));
    if cache_stats.disk_rejects > 0 {
        timer.note(format!(
            "persistent cache: {} corrupt/mismatched file(s) rejected and re-simulated",
            cache_stats.disk_rejects
        ));
    }
    if cache_stats.disk_evictions > 0 {
        timer.note(format!(
            "persistent cache: {} cell(s) evicted by the size budget",
            cache_stats.disk_evictions
        ));
    }
    if cache_stats.disk_retries > 0 {
        timer.note(format!(
            "persistent cache: {} transient IO error(s) absorbed by retry",
            cache_stats.disk_retries
        ));
    }
    if cache_stats.degraded {
        timer.note(
            "persistent cache: degraded to memory-only after repeated hard disk failures"
                .to_string(),
        );
    }
    if cache_stats.panicked_cells > 0 {
        timer.note(format!(
            "panic isolation: {} cell attempt(s) panicked and were caught",
            cache_stats.panicked_cells
        ));
    }
    eprintln!("\ntotal wall time: {:.1}s", timer.total());
    if opts.timing {
        let experiments = opts.experiments.join(" ");
        let section =
            timer.render_markdown(opts.setup.scale, opts.setup.seed, threads, &experiments);
        // Only a pure `all` run may replace the recorded section — a
        // partial run would overwrite the committed full-pipeline
        // numbers with a table missing most phases, and an ad-hoc
        // scenario run would splice arbitrary extra phases into them.
        if !wants("all") || wants("scenario") {
            eprintln!("--timing: non-standard run ({experiments}); printing instead of updating EXPERIMENTS.md");
            println!("{section}");
            return;
        }
        let path = std::path::Path::new("EXPERIMENTS.md");
        match record_timing(path, &section) {
            Ok(()) => eprintln!("recorded per-phase timing into {}", path.display()),
            Err(e) => {
                eprintln!(
                    "could not update {} ({e}); timing section follows:",
                    path.display()
                );
                println!("{section}");
            }
        }
    }
}

const USAGE: &str = "\
repro — regenerate the tables and figures of Gaussier et al. (SC'15)

USAGE: repro [OPTIONS] <EXPERIMENT>...

EXPERIMENTS
  table1     EASY vs EASY-Clairvoyant per log           (Table 1)
  table6     AVEbsld overview of all heuristic triples  (Table 6)
  table7     cross-validated triple selection           (Table 7)
  table8     MAE vs mean E-Loss on Curie                (Table 8)
  fig3       inter-log scatter + Pearson aggregate      (Figure 3)
  fig4       ECDF of prediction errors on Curie         (Figure 4)
  fig5       ECDF of predicted values on Curie          (Figure 5)
  ablation   scheduler/correction/optimizer/basis/loss ablations
  all        everything above
  scenario   one simulation picked by the scenario options below
  serve      simulation daemon: newline-delimited JSON over local TCP,
             streaming metrics, results byte-identical to `scenario`

OPTIONS
  --scale F    preset scale factor (default 0.05; 1.0 = full Table 4)
  --full       the resumable full-scale run: --scale 1.0 composed with
               --cache (default directory ./repro-cache), --prune and
               --progress; kill it at any point and relaunch the same
               command to resume from the cells already on disk
  --seed N     workload generation seed (default 20150101)
  --out DIR    also write JSON artifacts to DIR
  --threads N  pin the worker-pool width (default: RAYON_NUM_THREADS or
               the machine's parallelism); results are identical at any N
  --timing     record per-phase wall-clock into ./EXPERIMENTS.md (with a
               per-log campaigns breakdown and cache-effectiveness counts)
  --cache DIR  persist simulated cells to DIR and reuse them across runs
               (a repeated run over unchanged workloads simulates nothing;
               a killed run resumes)
  --cache-budget BYTES
               size budget for the cache directory (K/M/G suffixes, e.g.
               512M, 8G; default 8G). Past it, least-recently-used cells
               are evicted — never cells the current run touched
  --progress   per-cell progress lines on stderr (`progress: campaign
               KTH-SP2 [17/130] ... — simulated in 12.4s`); redirect
               stderr to a file to get a resume journal
  --prune      early-abort campaign triples whose AVEbsld lower bound
               already exceeds the best baseline (sweep mode; winner
               preserved, pruned cells record lower bounds; default off —
               without it all outputs are byte-identical to previous
               releases)
  --list       print every registered scheduler/predictor/correction name

SCENARIO OPTIONS (imply the scenario experiment when no other is named)
  --swf FILE      simulate this SWF log instead of a synthetic preset
  --log NAME      synthetic Table 4 preset (prefix match; default KTH-SP2)
  --scheduler S   e.g. easy, easy-sjbf, fcfs, conservative  (default easy)
  --predictor P   e.g. requested, ave2, clairvoyant,
                  ml(u=lin,o=sq,g=area) or ml:u=lin,o=sq,g=area
                  (default requested)
  --correction C  e.g. req-time, incremental, rec-doubling  (default none)
  --cluster SPEC  place the workload on an explicit cluster: `64` is one
                  homogeneous 64-processor machine (the legacy model);
                  `cluster:64x1+32x0.5` is two ordered partitions — 64
                  full-speed processors, then 32 at half speed — routed
                  first-fit (default: the workload's own machine)

SERVE OPTIONS (imply the serve experiment when no other is named)
  --listen ADDR      bind address (default 127.0.0.1:0 — an ephemeral
                     port, printed on stderr once the daemon is up)
  --serve-workers N  simulation worker threads (default: --threads, or 2)
  --serve-queue N    max queued submissions before `busy` (default 16)

ENVIRONMENT
  REPRO_FAULTS  seeded deterministic fault injection for robustness
                testing, e.g. `seed=42,cache.read:p=0.05,cell.panic:max=1`.
                Clause grammar: `seed=N` or
                `site[:p=F][:max=N][:after=N][:kind=transient|hard]`.
                Sites: cache.read, cache.write, cache.rename,
                cache.remove, index.flush, serve.read, serve.write,
                swf.read, trace.read, cell.panic. Artifacts stay
                byte-identical to a fault-free run (the hardening under
                test); absorbed faults show up in the cache summary
                counters (disk_retries, degraded, panicked_cells).
                Unset (the default) = zero-overhead passthrough.

Ctrl-C drains the daemon (in-flight jobs cancel cooperatively, the
cache index is flushed); in batch mode it flushes the persistent cache
index before exiting, so a killed --cache run still resumes cleanly.
";
