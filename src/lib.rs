//! # predictsim
//!
//! A production-quality Rust reproduction of **Gaussier, Glesser, Reis &
//! Trystram, *"Improving Backfilling by using Machine Learning to predict
//! Running Times"*, SuperComputing 2015** — on-line machine-learned
//! running-time prediction integrated into EASY backfilling, evaluated by
//! full scheduling simulation.
//!
//! This crate is the façade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `predictsim-core` | the paper's contribution: Table 2 features, Eq. 1 polynomial model, the §4.2 asymmetric weighted loss family, NAG training, §5.2 corrections |
//! | [`sim`] | `predictsim-sim` | event-driven batch simulator, EASY / EASY-SJBF / FCFS / conservative schedulers, prediction + correction interfaces, audit |
//! | [`swf`] | `predictsim-swf` | Standard Workload Format parsing, writing, cleaning |
//! | [`workload`] | `predictsim-workload` | synthetic stand-ins for the six Table 4 logs |
//! | [`metrics`] | `predictsim-metrics` | bounded slowdown, ECDF, Pearson, MAE |
//! | [`experiments`] | `predictsim-experiments` | the §6 campaign: 128 heuristic triples/log, cross-validation, every table and figure |
//!
//! ## Quickstart: the `Scenario` API
//!
//! Every simulation runs through one entry point: a [`Scenario`] is a
//! workload source crossed with registry-named policies (run
//! `repro --list` for the full inventory).
//!
//! ```
//! use predictsim::prelude::*;
//!
//! // 1. A workload source: synthetic here; `SwfSource::new("log.swf")`
//! //    loads a real Parallel Workloads Archive trace the same way.
//! let source = SyntheticSource::new(WorkloadSpec::toy(), 42);
//!
//! // 2. Standard EASY (user-requested times) ...
//! let easy = Scenario::builder()
//!     .workload(source.clone())
//!     .scheduler("easy")
//!     .predictor("requested")
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // 3. ... versus the paper's prediction-augmented scheduler:
//! //    E-Loss-trained NAG regression + incremental correction + SJBF.
//! let ml = Scenario::builder()
//!     .workload(source)
//!     .scheduler("easy-sjbf")
//!     .predictor("ml:u=lin,o=sq,g=area")
//!     .correction("incremental")
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! println!("EASY AVEbsld = {:.1}", easy.ave_bsld());
//! println!("ML   AVEbsld = {:.1}", ml.ave_bsld());
//! assert_eq!(easy.outcomes.len(), ml.outcomes.len());
//! ```
//!
//! ## Reproducing the paper
//!
//! ```text
//! cargo run --release -p predictsim --bin repro -- all
//! ```
//!
//! regenerates Tables 1, 6, 7, 8 and Figures 3, 4, 5 (see EXPERIMENTS.md
//! for the recorded paper-vs-measured comparison), and `cargo bench`
//! runs the Criterion harness over the same experiments. `repro serve`
//! keeps the process (and its warm [`serve`] simulation cache) resident
//! as a local daemon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use predictsim_core as core;
pub use predictsim_experiments as experiments;
pub use predictsim_metrics as metrics;
pub use predictsim_serve as serve;
pub use predictsim_sim as sim;
pub use predictsim_swf as swf;
pub use predictsim_workload as workload;

/// The most common imports, for examples and quick scripts.
pub mod prelude {
    pub use predictsim_core::correction::{
        IncrementalCorrection, RecursiveDoublingCorrection, RequestedTimeCorrection,
    };
    pub use predictsim_core::predictor::{Ave2Predictor, MlConfig, MlPredictor};
    pub use predictsim_core::{AsymmetricLoss, WeightingScheme};
    pub use predictsim_experiments::{
        campaign_triples, cross_validate, run_campaign, run_campaign_cluster, CorrectionKind,
        ExperimentSetup, HeuristicTriple, LoadedWorkload, PredictionTechnique, RegistryError,
        Scenario, ScenarioBuilder, ScenarioError, SourceError, SwfSource, SyntheticSource, Variant,
        WorkloadSource,
    };
    pub use predictsim_metrics::{ave_bsld, bounded_slowdown, Ecdf, DEFAULT_TAU};
    pub use predictsim_sim::{
        simulate, simulate_observed, ClairvoyantPredictor, EasyScheduler, FcfsScheduler, Job,
        JobId, MetricsObserver, RequestedTimePredictor, SimConfig, SimEvent, SimObserver, Time,
    };
    pub use predictsim_workload::{generate, GeneratedWorkload, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let spec = WorkloadSpec::toy();
        assert_eq!(spec.machine_size, 64);
        assert_eq!(DEFAULT_TAU, 10.0);
    }
}
