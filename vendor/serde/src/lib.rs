//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal serialization framework under serde's name: a self-describing
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits converting to and
//! from it, and `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` stand-in) for structs with named fields and
//! unit-only enums — exactly the shapes this workspace derives.
//!
//! JSON text round-tripping lives in the sibling `serde_json` stand-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (field order preserved, as derived).
    Map(Vec<(String, Value)>),
}

/// A deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected value.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {got:?}"))
    }
}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a self-describing value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes a named field of a [`Value::Map`] — the
/// helper the derive macro expands to.
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, field)) => {
                T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {}", e.0)))
            }
            None => {
                T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
            }
        },
        other => Err(DeError::unexpected("map", other)),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::UInt(u) => Ok(*u),
            other => Err(DeError::unexpected("unsigned integer", other)),
        }
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::unexpected("number", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected {expected}-tuple, got {} elements", items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic field order for stable output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::unexpected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::unexpected("map", other)),
        }
    }
}
