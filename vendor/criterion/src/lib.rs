//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset this workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! with a deliberately simple measurement loop: a short warm-up, then
//! `sample_size` timed samples whose median per-iteration time is printed
//! to stderr. No statistics, plots, or `target/criterion` reports.
//!
//! Passing `--test` as a CLI argument (as `cargo test --benches` does)
//! runs every benchmark exactly once, unmeasured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The timing loop handed to each benchmark closure. Records the median
/// per-iteration time of the last `iter` call so the harness can report
/// it.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    median: Option<Duration>,
}

impl Bencher {
    /// Calls `f` through a warm-up plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
}

impl Settings {
    fn run<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            median: None,
        };
        f(&mut b);
        if self.test_mode {
            eprintln!("bench {name}: ok (test mode)");
            return;
        }
        match b.median {
            Some(median) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                        format!(" ({:.0} elements/s)", n as f64 / median.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                        format!(" ({:.0} bytes/s)", n as f64 / median.as_secs_f64())
                    }
                    _ => String::new(),
                };
                eprintln!(
                    "bench {name}: median {median:?} over {} samples{rate}",
                    self.sample_size
                );
            }
            None => eprintln!("bench {name}: closure never called Bencher::iter"),
        }
    }
}

/// The harness entry point.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            settings: Settings {
                sample_size: 10,
                test_mode,
                throughput: None,
            },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.settings.run(name, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `group_name/name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.settings.run(&full, f);
        self
    }

    /// Benchmarks a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.settings.run(&full, |b| f(b, input));
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 3,
                test_mode: false,
                throughput: None,
            },
        };
        let mut calls = 0usize;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // warm-up + 3 samples.
        assert_eq!(calls, 4);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).throughput(Throughput::Elements(100));
        let mut group_calls = 0usize;
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| {
                group_calls += n;
                black_box(group_calls)
            })
        });
        g.finish();
        assert_eq!(group_calls, 7 * 3);
    }
}
