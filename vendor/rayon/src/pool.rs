//! The execution core: a global, lazily-initialized worker pool.
//!
//! # Design
//!
//! The crate is `forbid(unsafe_code)`, which rules out real rayon's
//! work-stealing deque of borrowed tasks (its lifetime erasure is
//! `unsafe`). The safe equivalent used here:
//!
//! * A global [`struct@Pool`] — created on first use — owns the
//!   configured width (`RAYON_NUM_THREADS` or
//!   [`std::thread::available_parallelism`]) and the accounting
//!   counters behind [`stats`].
//! * Each bulk operation ([`run`]) spawns up to `width` workers through
//!   [`std::thread::scope`], whose compiler-checked borrowing replaces
//!   the `unsafe` lifetime erasure. Workers *share* work dynamically:
//!   they claim chunks of indexed items from a mutex-guarded queue (the
//!   claim is O(chunk), the work itself runs unlocked), so an uneven
//!   item — one slow simulation among quick ones — never serializes the
//!   rest of the batch behind it.
//! * Results travel back as `(index, value)` pairs over a channel and
//!   are reassembled in input order, so `collect` is order-preserving
//!   and bit-identical to the sequential execution.
//! * A panicking item sets a stop flag (workers drain no further
//!   chunks), and the **original** panic payload is re-raised on the
//!   calling thread once every worker has parked.
//!
//! With a width of 1 (e.g. `RAYON_NUM_THREADS=1` in CI) no threads are
//! spawned at all: the operation runs inline on the caller.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};

/// The global pool: configuration plus cumulative accounting.
struct Pool {
    /// Worker count for bulk operations (≥ 1).
    width: usize,
    /// Bulk operations executed (parallel or inline).
    bulk_ops: AtomicU64,
    /// Bulk operations that took the multi-worker path.
    parallel_ops: AtomicU64,
    /// Total items pushed through bulk operations.
    items_processed: AtomicU64,
    /// Largest number of workers that each processed ≥ 1 item within a
    /// single bulk operation (the observable "pool size" probe).
    max_workers_in_one_op: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Scoped width override installed by [`with_num_threads`].
    static WIDTH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Reads `RAYON_NUM_THREADS`; like real rayon, `0`, unset, or an
/// unparsable value all mean "use the machine's parallelism".
fn configured_width() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        width: configured_width(),
        bulk_ops: AtomicU64::new(0),
        parallel_ops: AtomicU64::new(0),
        items_processed: AtomicU64::new(0),
        max_workers_in_one_op: AtomicUsize::new(0),
    })
}

/// The worker count bulk operations started from this thread will use:
/// the innermost [`with_num_threads`] override, else the global width.
pub fn current_num_threads() -> usize {
    WIDTH_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(|| pool().width)
}

/// Runs `f` with bulk operations *started from this thread* limited to
/// `num_threads` workers, restoring the previous setting afterwards
/// (also on panic). Nested calls shadow outer ones.
///
/// This is the hook tests and the `repro --threads N` flag use to pin
/// an execution width without touching the process environment; it
/// deliberately does not affect operations started from other threads.
///
/// # Panics
///
/// Panics if `num_threads` is zero.
pub fn with_num_threads<R>(num_threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(num_threads > 0, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(WIDTH_OVERRIDE.with(|c| c.replace(Some(num_threads))));
    f()
}

/// A snapshot of the pool's cumulative accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Bulk operations executed (parallel or inline).
    pub bulk_ops: u64,
    /// Bulk operations that took the multi-worker path.
    pub parallel_ops: u64,
    /// Total items pushed through bulk operations.
    pub items_processed: u64,
    /// Largest number of OS worker threads that each processed at least
    /// one item within a single bulk operation since process start.
    pub max_workers_in_one_op: usize,
}

/// Reads the pool's cumulative counters (used by the parallelism probe
/// tests and `repro --timing`).
pub fn stats() -> PoolStats {
    let p = pool();
    PoolStats {
        bulk_ops: p.bulk_ops.load(Ordering::Relaxed),
        parallel_ops: p.parallel_ops.load(Ordering::Relaxed),
        items_processed: p.items_processed.load(Ordering::Relaxed),
        max_workers_in_one_op: p.max_workers_in_one_op.load(Ordering::Relaxed),
    }
}

/// The shared fan-out skeleton: spawns `workers` scoped threads that
/// claim indexed chunks from a queue and call `each` on every item.
/// Handles the stop flag, panic capture/propagation (original payload),
/// worker accounting, and width propagation into the workers (so any
/// *nested* bulk operation a worker starts inherits the caller's
/// pinned width instead of silently reverting to the global default).
fn dispatch<I, E>(items: Vec<I>, width: usize, workers: usize, each: E)
where
    I: Send,
    E: Fn(usize, I) + Sync,
{
    let n = items.len();
    // Small chunks keep the load balanced when item costs are uneven
    // (simulations differ by orders of magnitude across triples); the
    // mutex-guarded claim is negligible next to any real item.
    let chunk = (n / (workers * 4)).max(1);
    let queue = Mutex::new(items.into_iter().enumerate());
    let stop = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let participants = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            let (queue, stop, panic_payload, participants, each) =
                (&queue, &stop, &panic_payload, &participants, &each);
            s.spawn(move || {
                WIDTH_OVERRIDE.with(|c| c.set(Some(width)));
                let mut counted = false;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let batch: Vec<(usize, I)> = {
                        let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                        q.by_ref().take(chunk).collect()
                    };
                    if batch.is_empty() {
                        return;
                    }
                    if !counted {
                        counted = true;
                        participants.fetch_add(1, Ordering::Relaxed);
                    }
                    for (index, item) in batch {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| each(index, item))) {
                            stop.store(true, Ordering::Relaxed);
                            let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            return;
                        }
                    }
                }
            });
        }
    });

    pool()
        .max_workers_in_one_op
        .fetch_max(participants.load(Ordering::Relaxed), Ordering::Relaxed);

    let first_panic = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

/// Records a bulk operation of `n` items in the stats and returns the
/// `(width, workers)` pair to run it with.
fn account(n: usize) -> (usize, usize) {
    let p = pool();
    p.bulk_ops.fetch_add(1, Ordering::Relaxed);
    p.items_processed.fetch_add(n as u64, Ordering::Relaxed);
    let width = current_num_threads();
    let workers = width.min(n);
    if workers > 1 {
        p.parallel_ops.fetch_add(1, Ordering::Relaxed);
    }
    (width, workers)
}

/// Applies `apply` to every item, in parallel across the pool's width,
/// returning the `Some` outputs **in input order** (`None` outputs are
/// filtered, which is how `filter` stages drop items).
///
/// # Panics
///
/// If `apply` panics on any item, the whole operation panics on the
/// calling thread with the original payload; remaining unclaimed items
/// are abandoned (workers observe a stop flag before claiming more).
pub(crate) fn run<I, R, F>(items: Vec<I>, apply: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> Option<R> + Sync,
{
    let n = items.len();
    let (width, workers) = account(n);
    if workers <= 1 {
        return items.into_iter().filter_map(apply).collect();
    }

    let (tx, rx) = mpsc::channel::<(usize, Option<R>)>();
    dispatch(items, width, workers, |index, item| {
        // The receiver outlives the dispatch, so a send cannot fail.
        let _ = tx.send((index, apply(item)));
    });
    drop(tx);

    let mut indexed: Vec<(usize, Option<R>)> = rx.into_iter().collect();
    assert_eq!(
        indexed.len(),
        n,
        "every item must be processed exactly once"
    );
    indexed.sort_unstable_by_key(|&(index, _)| index);
    indexed.into_iter().filter_map(|(_, out)| out).collect()
}

/// Like [`run`] but discards outputs: no result channel, no buffering,
/// no reassembly — the cheap path for `for_each`/`count`-style
/// terminals that don't need ordered results. Same panic semantics.
pub(crate) fn run_discard<I, F>(items: Vec<I>, apply: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let n = items.len();
    let (width, workers) = account(n);
    if workers <= 1 {
        items.into_iter().for_each(apply);
        return;
    }
    dispatch(items, width, workers, |_, item| apply(item));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_env_means_machine_width_and_override_restores() {
        assert!(current_num_threads() >= 1);
        let outer = current_num_threads();
        with_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_num_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn override_is_restored_after_a_panic() {
        let outer = current_num_threads();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_num_threads(7, || panic!("boom"));
        }));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn run_preserves_order_and_filters_none() {
        let squares = with_num_threads(4, || {
            run((0..1000u64).collect(), |x| (x % 3 != 0).then_some(x * x))
        });
        let expected: Vec<u64> = (0..1000u64).filter(|x| x % 3 != 0).map(|x| x * x).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn stats_count_parallel_operations() {
        let before = stats();
        with_num_threads(2, || run((0..64u32).collect(), Some));
        let after = stats();
        assert!(after.bulk_ops > before.bulk_ops);
        assert!(after.parallel_ops > before.parallel_ops);
        assert!(after.items_processed >= before.items_processed + 64);
    }

    #[test]
    fn workers_inherit_the_pinned_width_for_nested_operations() {
        // A nested bulk operation started *inside* a worker must see the
        // caller's pinned width, not the global default — otherwise
        // `--threads 1` / width-pinning tests would silently stop
        // covering nested fan-outs.
        let widths = with_num_threads(3, || {
            run((0..6u32).collect(), |_| Some(current_num_threads()))
        });
        assert_eq!(widths, vec![3; 6]);
    }

    #[test]
    fn run_discard_visits_every_item_once() {
        let sum = std::sync::atomic::AtomicU64::new(0);
        with_num_threads(4, || {
            run_discard((1..=100u64).collect(), |x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn single_width_runs_inline_without_spawning() {
        let caller = std::thread::current().id();
        let ids = with_num_threads(1, || {
            run((0..8u32).collect(), |_| Some(std::thread::current().id()))
        });
        assert!(ids.iter().all(|&id| id == caller));
    }
}
