//! Offline stand-in for the `rayon` crate — with a real thread pool.
//!
//! The build environment has no network access, so this crate provides
//! the parallel-iterator subset the workspace uses (`par_iter`,
//! `into_par_iter`, `map`, `filter`, `collect`, `for_each`, `sum`,
//! `count`) under rayon's trait names, executed **in parallel** by the
//! pool in [`pool`]:
//!
//! * the pool width comes from `RAYON_NUM_THREADS` (0/unset → machine
//!   parallelism), with a scoped per-thread override
//!   ([`pool::with_num_threads`]) for tests and `repro --threads N`;
//! * workers claim chunks of indexed items from a shared queue, so
//!   uneven item costs (simulations spanning orders of magnitude) load-
//!   balance dynamically;
//! * `collect` is order-preserving: outputs are reassembled by input
//!   index, so results are bit-identical to a sequential run at any
//!   thread count;
//! * a panic on any item aborts the bulk operation and resurfaces on
//!   the calling thread with the original payload;
//! * the crate stays `forbid(unsafe_code)` — worker threads are scoped
//!   ([`std::thread::scope`]) rather than detached, because safely
//!   running borrowed closures on `'static` pool threads is exactly the
//!   part of real rayon that requires `unsafe`. The global [`pool`]
//!   owns configuration and accounting; scoped workers do the running.
//!
//! Swapping the real crate back in changes performance characteristics,
//! not results: the campaign runner relies only on item independence
//! and order preservation, which both implementations guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, PoolStats};

/// The traits (and nothing else) that `use rayon::prelude::*` imports.
pub mod prelude {
    use crate::iter::{Identity, ParIter};

    /// `par_iter()` by reference: mirrors
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator type produced.
        type Iter;
        /// The item type.
        type Item: 'data;

        /// Returns a parallel iterator over `&self`'s elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<&'data T, Identity>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            ParIter::new(self.iter().collect())
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<&'data T, Identity>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            ParIter::new(self.as_slice().iter().collect())
        }
    }

    /// `into_par_iter()` by value: mirrors
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The parallel iterator type produced.
        type Iter;
        /// The item type.
        type Item;

        /// Consumes `self`, returning a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = ParIter<T, Identity>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(self)
        }
    }

    impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
        type Iter = ParIter<T, Identity>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(self.into_iter().collect())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParIter<usize, Identity>;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(self.collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let consumed: Vec<i32> = v.into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(consumed, vec![2, 4]);
    }
}
