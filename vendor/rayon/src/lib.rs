//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this crate provides
//! `par_iter` / `into_par_iter` under rayon's trait names, executing
//! **sequentially**: the returned "parallel" iterator is the ordinary
//! iterator, so every adapter chain (`map`, `filter`, `collect`, …)
//! behaves identically, deterministically, and without any thread pool.
//!
//! The workspace's campaign runner only relies on item independence and
//! order preservation, both of which the sequential fallback satisfies
//! (rayon's `collect` preserves order too, so swapping the real crate
//! back in changes performance, not results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The traits (and nothing else) that `use rayon::prelude::*` imports.
pub mod prelude {
    /// `par_iter()` by reference: mirrors
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced (sequential here).
        type Iter: Iterator<Item = Self::Item>;
        /// The item type.
        type Item: 'data;

        /// Returns a (sequential) iterator over `&self`'s elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }

    /// `into_par_iter()` by value: mirrors
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The iterator type produced (sequential here).
        type Iter: Iterator<Item = Self::Item>;
        /// The item type.
        type Item;

        /// Consumes `self`, returning a (sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T, const N: usize> IntoParallelIterator for [T; N] {
        type Iter = std::array::IntoIter<T, N>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let consumed: Vec<i32> = v.into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(consumed, vec![2, 4]);
    }
}
