//! Parallel iterators: the `par_iter()` / `into_par_iter()` adapter
//! chains executed by [`crate::pool`].
//!
//! A [`ParIter`] owns the materialized source items plus a composed
//! per-item pipeline ([`Pipe`]): `map` and `filter` only stack another
//! stage onto the pipeline, and the terminal operations (`collect`,
//! `for_each`, `sum`, `count`) hand the items and the fused pipeline to
//! [`pool::run`], which applies the whole chain to each item on a
//! worker thread. Output order always matches input order, exactly like
//! real rayon's indexed `collect`.

use crate::pool;

/// A fused per-item pipeline stage: applies the chain built so far to
/// one source item, returning `None` when a `filter` dropped it.
pub trait Pipe<I>: Sync {
    /// The pipeline's output item type.
    type Out: Send;

    /// Runs the pipeline on one source item.
    fn apply(&self, input: I) -> Option<Self::Out>;
}

/// The empty pipeline at the head of every chain.
pub struct Identity;

impl<I: Send> Pipe<I> for Identity {
    type Out = I;

    #[inline]
    fn apply(&self, input: I) -> Option<I> {
        Some(input)
    }
}

/// Pipeline stage added by [`ParIter::map`].
pub struct MapPipe<P, F> {
    inner: P,
    f: F,
}

impl<I, O, P, F> Pipe<I> for MapPipe<P, F>
where
    O: Send,
    P: Pipe<I>,
    F: Fn(P::Out) -> O + Sync,
{
    type Out = O;

    #[inline]
    fn apply(&self, input: I) -> Option<O> {
        self.inner.apply(input).map(&self.f)
    }
}

/// Pipeline stage added by [`ParIter::filter`].
pub struct FilterPipe<P, F> {
    inner: P,
    f: F,
}

impl<I, P, F> Pipe<I> for FilterPipe<P, F>
where
    P: Pipe<I>,
    F: Fn(&P::Out) -> bool + Sync,
{
    type Out = P::Out;

    #[inline]
    fn apply(&self, input: I) -> Option<P::Out> {
        self.inner.apply(input).filter(|x| (self.f)(x))
    }
}

/// A parallel iterator: materialized source items plus the fused
/// adapter pipeline to run on each.
pub struct ParIter<I, P = Identity> {
    items: Vec<I>,
    pipe: P,
}

impl<I: Send> ParIter<I, Identity> {
    pub(crate) fn new(items: Vec<I>) -> Self {
        ParIter {
            items,
            pipe: Identity,
        }
    }
}

impl<I, P> ParIter<I, P>
where
    I: Send,
    P: Pipe<I>,
{
    /// Transforms each item with `f`, in parallel at the terminal
    /// operation.
    pub fn map<O, F>(self, f: F) -> ParIter<I, MapPipe<P, F>>
    where
        O: Send,
        F: Fn(P::Out) -> O + Sync,
    {
        ParIter {
            items: self.items,
            pipe: MapPipe {
                inner: self.pipe,
                f,
            },
        }
    }

    /// Keeps only the items `predicate` accepts.
    pub fn filter<F>(self, predicate: F) -> ParIter<I, FilterPipe<P, F>>
    where
        F: Fn(&P::Out) -> bool + Sync,
    {
        ParIter {
            items: self.items,
            pipe: FilterPipe {
                inner: self.pipe,
                f: predicate,
            },
        }
    }

    /// Executes the pipeline over the pool, preserving input order.
    fn run(self) -> Vec<P::Out> {
        let ParIter { items, pipe } = self;
        pool::run(items, |item| pipe.apply(item))
    }

    /// Executes in parallel and collects into `C` in input order.
    pub fn collect<C: FromIterator<P::Out>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Executes `f` on every output item (no ordering guarantee between
    /// workers, exactly like rayon's `for_each`); outputs are discarded,
    /// so no result channel or reassembly is paid for.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Out) + Sync,
    {
        let ParIter { items, pipe } = self;
        pool::run_discard(items, |item| {
            if let Some(out) = pipe.apply(item) {
                f(out);
            }
        });
    }

    /// Number of items surviving the pipeline (unordered tally — no
    /// result buffering).
    pub fn count(self) -> usize {
        let survivors = std::sync::atomic::AtomicUsize::new(0);
        let ParIter { items, pipe } = self;
        pool::run_discard(items, |item| {
            if pipe.apply(item).is_some() {
                survivors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        survivors.into_inner()
    }

    /// Sums the output items.
    pub fn sum<S: std::iter::Sum<P::Out>>(self) -> S {
        self.run().into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_filter_chain_preserves_order() {
        let out: Vec<u32> = crate::pool::with_num_threads(4, || {
            (0..100usize)
                .into_par_iter()
                .map(|x| x as u32 * 2)
                .filter(|x| x % 3 != 0)
                .map(|x| x + 1)
                .collect()
        });
        let expected: Vec<u32> = (0..100u32)
            .map(|x| x * 2)
            .filter(|x| x % 3 != 0)
            .map(|x| x + 1)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sum_count_and_for_each_terminals() {
        crate::pool::with_num_threads(3, || {
            let v: Vec<u64> = (1..=100).collect();
            let total: u64 = v.par_iter().map(|&x| x).sum();
            assert_eq!(total, 5050);
            assert_eq!(v.par_iter().filter(|&&x| x % 2 == 0).count(), 50);
            let hits = std::sync::atomic::AtomicU64::new(0);
            v.par_iter().for_each(|&x| {
                hits.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
            });
            assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 5050);
        });
    }
}
