//! The two behavioral guarantees the sequential stand-in could not
//! give: a panicking item aborts the whole operation with the original
//! payload (no deadlock, no silent drop), and two workers really do run
//! concurrently on distinct OS threads.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Barrier, Mutex};
use std::thread::ThreadId;
use std::time::Duration;

use rayon::prelude::*;

/// Runs `f` on a helper thread and panics if it does not finish within
/// `secs` — the deadlock guard for tests that would otherwise hang.
fn within_secs<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("parallel operation deadlocked")
}

#[test]
fn panic_propagates_original_payload_without_deadlock() {
    let caught = within_secs(30, || {
        std::panic::catch_unwind(|| {
            rayon::pool::with_num_threads(4, || {
                let _: Vec<u32> = (0..64usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 17 {
                            panic!("item 17 exploded");
                        }
                        i as u32
                    })
                    .collect();
            })
        })
    });
    let payload = caught.expect_err("the panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .expect("payload must be the original panic message");
    assert_eq!(msg, "item 17 exploded");
}

#[test]
fn panic_with_non_string_payload_survives() {
    #[derive(Debug, PartialEq)]
    struct Marker(u64);
    let caught = within_secs(30, || {
        std::panic::catch_unwind(|| {
            rayon::pool::with_num_threads(2, || {
                (0..8usize).into_par_iter().for_each(|i| {
                    if i == 3 {
                        std::panic::panic_any(Marker(0xDEAD));
                    }
                });
            })
        })
    });
    let payload = caught.expect_err("panic must propagate");
    assert_eq!(
        payload.downcast_ref::<Marker>(),
        Some(&Marker(0xDEAD)),
        "the original typed payload must survive the pool"
    );
}

#[test]
fn panic_stops_the_operation_early() {
    // After the panicking item, workers must stop claiming chunks: with
    // width 1... sequential inline still aborts at the panic. With
    // width 2, far fewer than all items should run after the abort.
    let ran = std::sync::Arc::new(AtomicUsize::new(0));
    let ran2 = ran.clone();
    let caught = within_secs(30, move || {
        std::panic::catch_unwind(move || {
            rayon::pool::with_num_threads(2, || {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    ran2.fetch_add(1, Ordering::Relaxed);
                    if i == 0 {
                        panic!("abort");
                    }
                    std::thread::sleep(Duration::from_micros(50));
                });
            })
        })
    });
    assert!(caught.is_err());
    assert!(
        ran.load(Ordering::Relaxed) < 10_000,
        "the stop flag must prevent draining the whole input after a panic"
    );
}

/// The rendezvous proof of real parallelism: two items wait on one
/// `Barrier` — the operation can only complete if two OS threads run
/// them concurrently. A sequential executor would deadlock (caught by
/// the timeout guard), so completion *is* the assertion.
#[test]
fn two_workers_rendezvous_on_distinct_os_threads() {
    let ids: Vec<ThreadId> = within_secs(60, || {
        rayon::pool::with_num_threads(2, || {
            let barrier = Barrier::new(2);
            (0..2usize)
                .into_par_iter()
                .map(|_| {
                    barrier.wait();
                    std::thread::current().id()
                })
                .collect()
        })
    });
    let distinct: HashSet<ThreadId> = ids.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        2,
        "both items must run on their own OS thread"
    );
}

/// Closure-observed thread accounting: at width 4 over slow-ish items,
/// more than one worker thread participates, and none of them is the
/// calling thread (workers are scoped spawns).
#[test]
fn wide_pool_uses_multiple_worker_threads() {
    let caller = std::thread::current().id();
    let seen: HashSet<ThreadId> = within_secs(60, || {
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let barrier = Barrier::new(2);
        rayon::pool::with_num_threads(4, || {
            (0..8usize).into_par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Pairwise rendezvous: every item must meet another
                // item running concurrently on a different claimant.
                barrier.wait();
            });
        });
        seen.into_inner().unwrap()
    });
    assert!(seen.len() >= 2, "expected >1 worker, saw {}", seen.len());
    assert!(
        !seen.contains(&caller),
        "scoped workers must not be the calling thread"
    );
}
