//! Property tests of the pool: any `par_iter` chain must equal its
//! sequential counterpart — same elements, same order — at every pool
//! width, including the degenerate lengths 0, 1, and lengths well past
//! the chunking threshold.

use proptest::prelude::*;
use rayon::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `map().collect()` over an arbitrary `Vec<u64>` equals the
    /// sequential result at widths 1, 2, 3, and 8.
    #[test]
    fn par_map_equals_sequential_map(
        v in prop::collection::vec(0u64..1_000_000, 0..300),
        width in 1usize..=8,
    ) {
        let expected: Vec<u64> = v.iter().map(|&x| x.wrapping_mul(2654435761) ^ 17).collect();
        let parallel: Vec<u64> = rayon::pool::with_num_threads(width, || {
            v.par_iter().map(|&x| x.wrapping_mul(2654435761) ^ 17).collect()
        });
        prop_assert_eq!(parallel, expected);
    }

    /// `filter` + `map` chains drop and transform exactly the same
    /// items in the same order as the sequential iterator.
    #[test]
    fn par_filter_map_equals_sequential(
        v in prop::collection::vec(0u64..100, 0..257),
        modulus in 1u64..7,
        width in 1usize..=8,
    ) {
        let expected: Vec<u64> = v
            .iter()
            .filter(|&&x| x % modulus != 0)
            .map(|&x| x + 1)
            .collect();
        let parallel: Vec<u64> = rayon::pool::with_num_threads(width, || {
            v.par_iter().filter(|&&x| x % modulus != 0).map(|&x| x + 1).collect()
        });
        prop_assert_eq!(parallel, expected);
    }

    /// `sum` and `count` agree with the sequential aggregates.
    #[test]
    fn par_aggregates_equal_sequential(
        v in prop::collection::vec(0u64..1_000, 0..200),
        width in 1usize..=8,
    ) {
        let (sum, count) = rayon::pool::with_num_threads(width, || {
            let s: u64 = v.par_iter().map(|&x| x).sum();
            let c = v.par_iter().filter(|&&x| x % 2 == 0).count();
            (s, c)
        });
        prop_assert_eq!(sum, v.iter().sum::<u64>());
        prop_assert_eq!(count, v.iter().filter(|&&x| x % 2 == 0).count());
    }
}

/// The explicit boundary lengths the chunking logic must survive: empty
/// input, a single item, and a length far above `width * 4` chunks.
#[test]
fn boundary_lengths_round_trip() {
    for width in [1usize, 2, 5, 8] {
        rayon::pool::with_num_threads(width, || {
            let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
            assert!(empty.is_empty(), "width {width}");

            let single: Vec<u32> = vec![41u32].into_par_iter().map(|x| x + 1).collect();
            assert_eq!(single, vec![42], "width {width}");

            let n = width * 4 * 13 + 7; // beyond any chunk boundary
            let long: Vec<usize> = (0..n).into_par_iter().map(|x| x * 3).collect();
            assert_eq!(
                long,
                (0..n).map(|x| x * 3).collect::<Vec<_>>(),
                "width {width}"
            );
        });
    }
}

/// Owned (`into_par_iter`) and borrowed (`par_iter`) sources agree.
#[test]
fn owned_and_borrowed_sources_agree() {
    let v: Vec<u64> = (0..500).map(|x| x * x).collect();
    rayon::pool::with_num_threads(4, || {
        let by_ref: Vec<u64> = v.par_iter().map(|&x| x / 3).collect();
        let by_val: Vec<u64> = v.clone().into_par_iter().map(|x| x / 3).collect();
        assert_eq!(by_ref, by_val);
    });
}
