//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the property-testing subset the workspace's test suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples (up to 10), [`strategy::Just`], and
//!   [`collection::vec`];
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assume!`].
//!
//! Differences from real proptest, by design: inputs are sampled from a
//! fixed deterministic seed per case index (no persisted failure seeds),
//! and failing cases are **not shrunk** — the failing input's case number
//! is reported instead. For a reproduction whose property tests are
//! expected to pass, that trade keeps the vendored crate small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Everything `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Test-runner plumbing: configuration, RNG, and case errors.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test configuration. Only `cases` is implemented.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case's inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A property violation.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic per-case RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// The RNG for the `case`-th case of a property (fixed seed: runs
        /// are reproducible across invocations).
        pub fn for_case(case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                0x5EED_0000_0000_0000u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A way to generate values of `Self::Value` from an RNG.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives — what [`prop_oneof!`]
    /// builds.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A strategy choosing uniformly among `options` per sample.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}: {msg}");
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) when violated.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case's inputs without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($option)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3i64..10, y in 0.0f64..1.0, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        /// Vec + tuple + map + oneof compose.
        #[test]
        fn composition(
            v in prop::collection::vec((0i64..5, Just(7i64)).prop_map(|(a, b)| a + b), 2..6),
            w in prop_oneof![Just(-1i64), 10i64..20],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!((7..12).contains(x), "x = {x}");
            }
            prop_assert!(w == -1 || (10..20).contains(&w));
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_rejects(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(5);
        let mut b = TestRng::for_case(5);
        let s = 0.0f64..1.0;
        use crate::strategy::Strategy as _;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
