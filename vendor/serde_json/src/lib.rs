//! Offline stand-in for `serde_json`: compact and pretty JSON writing plus
//! a strict recursive-descent parser, over the vendored `serde` crate's
//! [`serde::Value`] data model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; keep a decimal
                // point (or exponent) so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Mirror serde_json's lossy behavior for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_delimited(out, indent, level, '[', ']', items.iter(), write_value)?
        }
        Value::Map(entries) => write_delimited(
            out,
            indent,
            level,
            '{',
            '}',
            entries.iter(),
            |out, (k, val), ind, lvl| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, lvl)
            },
        )?,
    }
    Ok(())
}

fn write_delimited<I, F>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize) -> Result<(), Error>,
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1)?;
    }
    if let (Some(width), false) = (indent, empty) {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` in object, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject them for simplicity.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error(format!("invalid codepoint \\u{hex}")))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        if text.is_empty() || text == "-" {
            return Err(Error(format!("expected number at offset {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
        assert_eq!(from_str::<f64>("0.0").unwrap(), 0.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(to_string(&Option::<i64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&json).unwrap(), v);
        let pairs = vec![(1i64, 2.5f64), (3, 4.5)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(i64, f64)>>(&json).unwrap(), pairs);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v = vec![vec![1i64], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<i64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_round_trips() {
        for &f in &[0.1, 1e-12, 123456.789012345, -7.5e10_f64] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f, "via {json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("4 2").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
