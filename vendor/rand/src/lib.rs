//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool` over uniform primitives.
//!
//! The generator is xoshiro256++ (public domain reference algorithm),
//! seeded through SplitMix64 — deterministic, fast, and statistically
//! solid for the simulation workloads generated here. It makes no attempt
//! to match upstream `rand`'s stream; the workspace only relies on
//! seed-reproducibility, not on a particular stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core of every random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type (`f64`/`f32` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with a uniform sampler over an interval — the bound behind
/// [`Rng::gen_range`]. A single blanket [`SampleRange`] impl per range
/// shape keeps literal-type inference working exactly as with upstream
/// `rand` (e.g. `x_f64 * rng.gen_range(0.95..1.1)` infers `f64`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic from its seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let i = r.gen_range(5i64..10);
            assert!((5..10).contains(&i));
            let u = r.gen_range(1u32..=4);
            assert!((1..=4).contains(&u));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
