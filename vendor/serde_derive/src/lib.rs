//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two item shapes this workspace derives: structs with named fields and
//! enums whose variants are all unit variants. No `#[serde(...)]`
//! attributes are supported (none are used in the workspace), and the
//! token-stream parsing is done by hand — this crate must build with no
//! dependencies (`syn`/`quote` are unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with only unit variants.
    Enum { name: String, variants: Vec<String> },
}

/// Parses the derive input into a [`Shape`].
///
/// Grammar handled: any outer attributes and visibility, then
/// `struct Name { fields }` or `enum Name { variants }`. Generics,
/// where-clauses, tuple structs and data-carrying enum variants are
/// rejected with a compile error naming the limitation.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility / other modifiers until
    // the `struct` / `enum` keyword.
    let mut kind: Option<&'static str> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` plus the bracketed attribute group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                kind = Some("struct");
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                kind = Some("enum");
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("expected `struct` or `enum`")?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    // Generics are not supported (and not used by the workspace).
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("cannot derive for generic type `{name}`"));
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(_) => i += 1,
            None => {
                return Err(format!(
                    "`{name}` has no braced body (tuple/unit types unsupported)"
                ))
            }
        }
    };
    if kind == "struct" {
        Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            variants: parse_unit_variants(body)?,
        })
    }
}

/// Extracts field names from the body of a named-field struct: for each
/// top-level `ident : type` (at angle-bracket depth 0, commas inside
/// generics skipped), the ident before the colon.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth: i32 = 0;
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '#' if !in_type && angle_depth == 0 => {
                    i += 1; // skip the attribute's bracket group too
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if !in_type && angle_depth == 0 => {
                    // A lone `:` ends the field name; `::` (paths) cannot
                    // appear before the colon in a named field.
                    let two_colons = matches!(
                        tokens.get(i + 1),
                        Some(TokenTree::Punct(q)) if q.as_char() == ':'
                    );
                    if two_colons {
                        i += 1;
                    } else {
                        let name = last_ident
                            .take()
                            .ok_or("field colon with no preceding name")?;
                        fields.push(name);
                        in_type = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type && angle_depth == 0 => {
                last_ident = Some(id.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    Ok(fields)
}

/// Extracts variant names from the body of an enum, requiring every
/// variant to be a unit variant.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            // `#` plus the bracketed attribute group (the trailing
            // `i += 1` below consumes the group).
            TokenTree::Punct(p) if p.as_char() == '#' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                match tokens.get(i + 1) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(other) => {
                        return Err(format!(
                            "variant `{name}` is not a unit variant (found {other}); \
                             only unit-variant enums are supported"
                        ))
                    }
                }
                variants.push(name);
                i += 1; // consume the comma (or run off the end)
            }
            _ => {}
        }
        i += 1;
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\n\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::unexpected(\n\
                                 \"string variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
