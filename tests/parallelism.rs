//! The pool-size probe: `run_campaign` must demonstrably fan out over
//! more than one OS thread.
//!
//! This file deliberately contains a single test and no other parallel
//! work: integration-test files are separate processes, so the global
//! pool counters read here can only have been advanced by the campaign
//! below (plus the accounting asserted on directly).

use predictsim::experiments::CorrectionKind;
use predictsim::prelude::*;

#[test]
fn campaign_fans_out_across_multiple_os_threads() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 4_000;
    spec.duration = 40 * 86_400;
    spec.utilization = 0.85;
    let w = generate(&spec, 7);
    // Eight triples, several of them expensive learning simulations
    // spanning multiple OS timeslices each, so every worker has time to
    // claim work before the first one drains the queue — even on a
    // single-core machine, where participation depends on preemption.
    let triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple::clairvoyant(Variant::Easy),
        HeuristicTriple::clairvoyant(Variant::EasySjbf),
        HeuristicTriple {
            prediction: PredictionTechnique::Ml(MlConfig::e_loss()),
            correction: Some(CorrectionKind::RecursiveDoubling),
            variant: Variant::Easy,
        },
        HeuristicTriple {
            prediction: PredictionTechnique::Ave2,
            correction: Some(CorrectionKind::RequestedTime),
            variant: Variant::EasySjbf,
        },
        HeuristicTriple {
            prediction: PredictionTechnique::Ml(MlConfig::new(
                AsymmetricLoss::SQUARED,
                WeightingScheme::Constant,
            )),
            correction: Some(CorrectionKind::Incremental),
            variant: Variant::EasySjbf,
        },
    ];

    let before = rayon::pool::stats();
    let campaign = rayon::pool::with_num_threads(4, || run_campaign(&w, &triples));
    let after = rayon::pool::stats();

    assert_eq!(campaign.results.len(), triples.len());
    assert!(
        after.parallel_ops > before.parallel_ops,
        "the campaign must take the multi-worker path"
    );
    assert!(
        after.items_processed >= before.items_processed + triples.len() as u64,
        "every triple must pass through the pool"
    );
    assert!(
        after.max_workers_in_one_op >= 2,
        "expected > 1 OS worker thread in one bulk operation, pool saw {}",
        after.max_workers_in_one_op
    );

    // And the parallel run is still the sequential run, result-wise —
    // compared against a *fresh* sequential simulation, not the
    // memoized cells of the parallel run.
    predictsim::experiments::SimCache::global().clear_memory();
    let sequential = rayon::pool::with_num_threads(1, || run_campaign(&w, &triples));
    assert_eq!(campaign, sequential);
}
