//! The golden-trace regression, run through the Scenario API: every
//! policy is resolved from its registry *name* (string-keyed, not
//! hand-boxed), every workload flows through a [`WorkloadSource`], and
//! the campaign → cross-validation JSON must still be byte-identical to
//! the pre-refactor golden trace — at pool widths 1 and 8.
//!
//! This is the proof that the Scenario port is behavior-preserving: the
//! golden file (`tests/golden/mini_pipeline.json`) was produced by the
//! legacy construction path and is deliberately NOT regenerated here.

use predictsim::experiments::campaign::{run_campaign_source, CampaignResult};
use predictsim::experiments::figures::fig4_fig5;
use predictsim::prelude::*;

const GOLDEN_PATH: &str = "tests/golden/mini_pipeline.json";

/// The same three mini-logs as `golden_trace.rs`, but wrapped as
/// workload sources.
fn golden_sources() -> Vec<SyntheticSource> {
    [("G1", 0.80), ("G2", 0.88), ("G3", 0.95)]
        .iter()
        .enumerate()
        .map(|(i, (name, util))| {
            let mut spec = WorkloadSpec::toy();
            spec.name = (*name).into();
            spec.jobs = 260;
            spec.duration = 3 * 86_400;
            spec.utilization = *util;
            SyntheticSource::new(spec, 20150101 + i as u64)
        })
        .collect()
}

/// The same triple slice as `golden_trace.rs`, but every entry is built
/// by *parsing its registry name* — the string-keyed path end to end.
fn golden_triples_by_name() -> Vec<HeuristicTriple> {
    [
        "requested+easy",
        "ave2+incremental+easy-sjbf",
        "ml(u=lin,o=sq,g=area)+incremental+easy-sjbf",
        "ml(u=lin,o=sq,g=area)+rec-doubling+easy",
        "ml(u=sq,o=sq,g=1)+incremental+easy-sjbf",
        "ave2+req-time+easy-sjbf",
        "clairvoyant+easy",
        "clairvoyant+easy-sjbf",
    ]
    .iter()
    .map(|name| {
        name.parse::<HeuristicTriple>()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    })
    .collect()
}

fn scenario_pipeline_json() -> String {
    let triples = golden_triples_by_name();
    let campaigns: Vec<CampaignResult> = golden_sources()
        .iter()
        .map(|source| run_campaign_source(source, &triples).expect("campaign over source"))
        .collect();
    let outcome = cross_validate(&campaigns);
    format!(
        "{{\n\"campaigns\": {},\n\"cross_validation\": {}\n}}",
        serde_json::to_string_pretty(&campaigns).expect("serialize campaigns"),
        serde_json::to_string_pretty(&outcome).expect("serialize CV outcome"),
    )
}

#[test]
fn scenario_path_reproduces_the_golden_trace_at_widths_1_and_8() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN_PATH} ({e})"));
    for width in [1usize, 8] {
        let rendered = rayon::pool::with_num_threads(width, scenario_pipeline_json);
        assert_eq!(
            rendered.trim_end(),
            golden.trim_end(),
            "Scenario-path pipeline at width {width} drifted from the \
             pre-refactor golden trace {GOLDEN_PATH}"
        );
    }
}

/// Figures are not part of the golden file; pin the ported figure
/// pipeline the other way: byte-identical JSON at widths 1 and 8.
#[test]
fn scenario_path_figures_are_width_invariant() {
    let source = &golden_sources()[0];
    let loaded: predictsim::experiments::LoadedWorkload =
        generate(&source.spec, source.seed).into();
    let json_at = |width: usize| {
        predictsim::experiments::SimCache::global().clear_memory();
        rayon::pool::with_num_threads(width, || {
            serde_json::to_string(&fig4_fig5(&loaded, 49)).expect("serialize figures")
        })
    };
    assert_eq!(json_at(1), json_at(8));
}
