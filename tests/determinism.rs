//! Cross-crate determinism guarantees: identical seeds and inputs must
//! produce bit-identical workloads, simulations, and campaign artifacts —
//! the property that makes every number in EXPERIMENTS.md reproducible.

use predictsim::experiments::SimCache;
use predictsim::prelude::*;

/// Campaigns route through the process-wide simulation cache; the tests
/// below compare *fresh* runs, so each run starts from a cleared cache
/// (otherwise the second run would trivially equal the first by
/// memoization rather than by determinism).
fn fresh() {
    SimCache::global().clear_memory();
}

#[test]
fn workload_generation_is_reproducible_across_calls() {
    let spec = WorkloadSpec::toy();
    let a = generate(&spec, 777);
    let b = generate(&spec, 777);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn learning_simulation_is_reproducible() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 300;
    spec.duration = 3 * 86_400;
    let w = generate(&spec, 88);
    let run = || {
        HeuristicTriple::paper_winner()
            .run(&w.jobs, w.sim_config())
            .expect("simulation")
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.ave_bsld(), b.ave_bsld());
}

/// The core contract, stated directly against `simulate`: two runs of
/// the engine on the same seed-derived workload produce identical
/// `JobOutcome` vectors — every field of every outcome, not just the
/// aggregates. Exercises the full prediction + correction path (the
/// E-Loss learner with SJBF ordering), where hidden nondeterminism
/// (hash-map iteration, tie-breaking, learner state) would first show up.
#[test]
fn simulate_twice_with_same_seed_yields_identical_outcome_vectors() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 400;
    spec.duration = 3 * 86_400;
    let seed = 4242;
    let run = || {
        let w = generate(&spec, seed);
        let mut predictor = MlPredictor::e_loss();
        let correction = IncrementalCorrection::new();
        let result = simulate(
            &w.jobs,
            w.sim_config(),
            &mut EasyScheduler::sjbf(),
            &mut predictor,
            Some(&correction),
        )
        .expect("simulation");
        (w.jobs.len(), result.outcomes)
    };
    let (jobs_a, outcomes_a) = run();
    let (jobs_b, outcomes_b) = run();
    assert_eq!(outcomes_a.len(), jobs_a);
    assert_eq!(jobs_a, jobs_b);
    assert_eq!(
        outcomes_a, outcomes_b,
        "identical seed must yield identical JobOutcome vectors"
    );
}

#[test]
fn different_seeds_change_the_workload() {
    let spec = WorkloadSpec::toy();
    let a = generate(&spec, 1);
    let b = generate(&spec, 2);
    assert_ne!(a.jobs, b.jobs);
}

#[test]
fn parallel_campaign_equals_itself() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 200;
    spec.duration = 2 * 86_400;
    let w = generate(&spec, 9);
    let triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ];
    fresh();
    let a = run_campaign(&w, &triples);
    fresh();
    let b = run_campaign(&w, &triples);
    assert_eq!(a, b, "rayon parallelism must not leak into results");
}

/// The determinism-under-parallelism stress test: the same campaign at
/// pool widths 1, 2, and 8 must serialize to **byte-identical**
/// `CampaignResult` JSON. Order-preserving collect plus per-simulation
/// isolation make the width unobservable in the artifact.
#[test]
fn campaign_json_is_byte_identical_across_thread_counts() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 350;
    spec.duration = 3 * 86_400;
    spec.utilization = 0.85;
    let w = generate(&spec, 20150101);
    let triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple::clairvoyant(Variant::Easy),
        HeuristicTriple::clairvoyant(Variant::EasySjbf),
    ];
    // Convert once: the arena (and its fingerprint) is shared by every
    // width, so only the simulations themselves are inside the loop.
    let loaded = predictsim::experiments::LoadedWorkload::from(&w);
    let json_at = |width: usize| {
        fresh();
        rayon::pool::with_num_threads(width, || {
            serde_json::to_string(&predictsim::experiments::campaign::run_campaign_loaded(
                &loaded, &triples,
            ))
            .expect("serialize campaign")
        })
    };
    let single = json_at(1);
    let dual = json_at(2);
    let octo = json_at(8);
    assert!(
        single == dual && single == octo,
        "campaign JSON must not depend on the pool width"
    );
}

/// Same stress, one level up: a full cross-validation over three logs
/// must be byte-identical at widths 1, 2, and 8 — the nested fan-outs
/// (campaign triples, then CV folds) both preserve order.
#[test]
fn cross_validation_json_is_byte_identical_across_thread_counts() {
    let workloads: Vec<GeneratedWorkload> = (0..3)
        .map(|i| {
            let mut spec = WorkloadSpec::toy();
            spec.name = format!("D{i}");
            spec.jobs = 220;
            spec.duration = 3 * 86_400;
            generate(&spec, 300 + i)
        })
        .collect();
    let triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ];
    let loaded: Vec<predictsim::experiments::LoadedWorkload> =
        workloads.iter().map(Into::into).collect();
    let json_at = |width: usize| {
        fresh();
        rayon::pool::with_num_threads(width, || {
            let campaigns: Vec<_> = loaded
                .iter()
                .map(|w| predictsim::experiments::campaign::run_campaign_loaded(w, &triples))
                .collect();
            serde_json::to_string(&cross_validate(&campaigns)).expect("serialize CV outcome")
        })
    };
    let single = json_at(1);
    assert_eq!(single, json_at(2));
    assert_eq!(single, json_at(8));
}

#[test]
fn experiment_setup_is_the_single_source_of_workloads() {
    let setup = ExperimentSetup {
        scale: 0.002,
        seed: 5,
    };
    let a = setup.workloads();
    let b = setup.workloads();
    assert_eq!(a.len(), 6);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.jobs, y.jobs, "{}", x.name);
    }
}
