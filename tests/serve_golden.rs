//! The daemon's result frames must be **byte-identical** to batch
//! output — pinned against the pre-refactor golden trace, not just
//! against today's batch path.
//!
//! The G1 mini-log cell (`ave2+incremental+easy-sjbf`, 260 jobs, 3
//! days, utilization 0.80, seed 20150101) exists in
//! `tests/golden/mini_pipeline.json`; a submission describing the same
//! cell over a real socket must stream back a `result` frame whose
//! embedded `TripleResult` pretty-prints to the exact bytes of that
//! golden entry — and to the exact bytes batch mode produces.

use predictsim::serve::{
    batch_result_json, Client, Frame, ServeConfig, Server, Submission, WorkloadRequest,
};
use serde::Value;

const GOLDEN_PATH: &str = "tests/golden/mini_pipeline.json";

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    match value {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {name:?}")),
        other => panic!("expected a map with field {name:?}, got {other:?}"),
    }
}

fn seq(value: &Value) -> &[Value] {
    match value {
        Value::Seq(items) => items,
        other => panic!("expected a sequence, got {other:?}"),
    }
}

fn str_of(value: &Value) -> &str {
    match value {
        Value::Str(s) => s,
        other => panic!("expected a string, got {other:?}"),
    }
}

/// The G1 `ave2+incremental+easy-sjbf` entry of the golden trace,
/// pretty-printed standalone.
fn golden_cell_json() -> String {
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN_PATH} ({e})"));
    let root: Value = serde_json::from_str(&text).expect("golden file parses");
    let campaign = seq(field(&root, "campaigns"))
        .iter()
        .find(|c| str_of(field(c, "log")) == "G1")
        .expect("G1 campaign in the golden trace");
    let cell = seq(field(campaign, "results"))
        .iter()
        .find(|r| str_of(field(r, "triple")) == "ave2+incremental+easy-sjbf")
        .expect("ave2+incremental+easy-sjbf cell in the G1 campaign");
    serde_json::to_string_pretty(cell).expect("serialize golden cell")
}

/// The same cell as a daemon submission (G1's spec from
/// `golden_scenario.rs`: toy defaults, 260 jobs, 3 days, util 0.80,
/// seed 20150101).
fn golden_submission() -> Submission {
    let mut submission = Submission::new(WorkloadRequest::Toy {
        name: "G1".into(),
        jobs: 260,
        duration: 3 * 86_400,
        utilization: 0.80,
        seed: 20150101,
    });
    submission.scheduler = Some("easy-sjbf".into());
    submission.predictor = Some("ave2".into());
    submission.correction = Some("incremental".into());
    submission
}

#[test]
fn daemon_result_frame_is_byte_identical_to_the_golden_trace_and_batch() {
    let golden = golden_cell_json();
    let submission = golden_submission();

    // Batch first: the golden entry and `repro scenario`'s JSON are the
    // same bytes (they share TripleResult + the same serializer).
    let batch = batch_result_json(&submission).expect("batch run succeeds");
    assert_eq!(
        batch, golden,
        "batch output drifted from the golden G1 cell"
    );

    // Now the daemon, over a real socket.
    let server = Server::start(ServeConfig::default()).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.submit(&submission).expect("submit");
    let frames = client.drain_job(1).expect("frames stream back");
    let result = frames
        .iter()
        .find_map(|f| match f {
            Frame::Result { result, source, .. } => Some((result, source)),
            _ => None,
        })
        .expect("a result frame arrives");
    assert_eq!(result.1, "simulated", "cold cell must be simulated");
    let served = serde_json::to_string_pretty(result.0).expect("serialize served cell");
    assert_eq!(
        served, golden,
        "daemon result frame drifted from the golden G1 cell"
    );
    server.shutdown();
}
