//! Panic isolation in the serve daemon, end to end over a real socket:
//! a cell whose simulation panics on every bounded retry surfaces as a
//! **typed `internal` error frame** — the worker thread survives, the
//! connection stays open, and the very next submission (the injected
//! fault budget spent) simulates normally. A wedged daemon, a dropped
//! connection, or an unmarked silence here would all fail this test.
//!
//! The fault plan is process-global, so this test lives in its own
//! binary; [`faultline::with_plan`] serializes it against any future
//! sibling and uninstalls the plan even on panic.

use predictsim::experiments::SimCache;
use predictsim::serve::faultline::{self, FaultPlan, FaultSpec};
use predictsim::serve::{Client, Frame, ServeConfig, Server, Submission, WorkloadRequest};

fn toy(name: &str, seed: u64) -> Submission {
    let mut submission = Submission::new(WorkloadRequest::Toy {
        name: name.into(),
        jobs: 60,
        duration: 14 * 86_400,
        utilization: 0.8,
        seed,
    });
    submission.scheduler = Some("easy-sjbf".into());
    submission.predictor = Some("ave2".into());
    submission.correction = Some("incremental".into());
    submission
}

fn next_ok(client: &mut Client) -> Frame {
    match client.next_frame().expect("read frame") {
        Some(Ok(frame)) => frame,
        Some(Err(e)) => panic!("unparsable frame: {e}"),
        None => panic!("server closed the connection early"),
    }
}

fn await_ack(client: &mut Client) -> u64 {
    match next_ok(client) {
        Frame::Ack { job, .. } => job,
        other => panic!("expected an ack, got {other:?}"),
    }
}

#[test]
fn poisoned_cell_answers_a_typed_internal_error_and_the_daemon_keeps_serving() {
    // Exactly enough injected panics to exhaust one cell's bounded
    // retries; after that the site is spent and the daemon is healthy.
    let plan = FaultPlan::builder()
        .site(
            "cell.panic",
            FaultSpec {
                p: 1.0,
                max: Some(u64::from(SimCache::PANIC_RETRIES)),
                ..FaultSpec::default()
            },
        )
        .build();
    faultline::with_plan(plan, || {
        let server = Server::start(ServeConfig::default()).expect("daemon starts");
        let mut client = Client::connect(server.addr()).expect("connect");

        client
            .submit(&toy("chaos-poisoned", 77_001))
            .expect("submit");
        let job = await_ack(&mut client);
        let (tagged, code, message) = loop {
            if let Frame::Error { job, code, message } = next_ok(&mut client) {
                break (job, code, message);
            }
        };
        assert_eq!(tagged, Some(job), "the failure is tagged to its job");
        assert_eq!(
            code, "internal",
            "a poisoned cell is a typed internal error"
        );
        assert!(
            message.contains("panicked"),
            "the panic is named, not euphemized: {message}"
        );

        // Same connection, next submission: the fault budget is spent,
        // the worker pool is intact, and the cell simulates normally.
        client
            .submit(&toy("chaos-recovered", 77_002))
            .expect("submit");
        let job2 = await_ack(&mut client);
        loop {
            match next_ok(&mut client) {
                Frame::Result { job, .. } => {
                    assert_eq!(job, job2);
                    break;
                }
                Frame::Error { message, .. } => panic!("recovery submission failed: {message}"),
                _ => {} // metrics frames interleave freely
            }
        }

        // And the control plane never blinked.
        client.ping().expect("ping");
        assert!(matches!(next_ok(&mut client), Frame::Pong));
        server.shutdown();
    });
}
