//! Golden-trace regression tests: the campaign → cross-validation
//! pipeline's numbers are pinned byte-for-byte, so a future engine or
//! pool optimization that silently shifts results fails loudly here
//! instead of quietly rewriting EXPERIMENTS.md.
//!
//! To regenerate the golden file after an *intentional* semantic change
//! (and review the diff like any other code change):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use predictsim::experiments::{reference_triples, CorrectionKind};
use predictsim::prelude::*;

const GOLDEN_PATH: &str = "tests/golden/mini_pipeline.json";

/// Three fixed mini-logs: deterministic stand-ins for the Table 4 set,
/// small enough for debug-build CI.
fn golden_workloads() -> Vec<GeneratedWorkload> {
    [("G1", 0.80), ("G2", 0.88), ("G3", 0.95)]
        .iter()
        .enumerate()
        .map(|(i, (name, util))| {
            let mut spec = WorkloadSpec::toy();
            spec.name = (*name).into();
            spec.jobs = 260;
            spec.duration = 3 * 86_400;
            spec.utilization = *util;
            generate(&spec, 20150101 + i as u64)
        })
        .collect()
}

/// A reduced but representative slice of the §6.2 grid: the named
/// baselines, learning triples across correction kinds and losses, and
/// the clairvoyant references.
fn golden_triples() -> Vec<HeuristicTriple> {
    let mut triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple {
            prediction: PredictionTechnique::Ml(MlConfig::e_loss()),
            correction: Some(CorrectionKind::RecursiveDoubling),
            variant: Variant::Easy,
        },
        HeuristicTriple {
            prediction: PredictionTechnique::Ml(MlConfig::new(
                AsymmetricLoss::SQUARED,
                WeightingScheme::Constant,
            )),
            correction: Some(CorrectionKind::Incremental),
            variant: Variant::EasySjbf,
        },
        HeuristicTriple {
            prediction: PredictionTechnique::Ave2,
            correction: Some(CorrectionKind::RequestedTime),
            variant: Variant::EasySjbf,
        },
    ];
    triples.extend(reference_triples());
    triples
}

#[test]
fn mini_pipeline_matches_golden_trace() {
    let workloads = golden_workloads();
    let triples = golden_triples();
    let campaigns: Vec<_> = workloads
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();
    let outcome = cross_validate(&campaigns);

    // Structural headline claims, independent of the exact bytes.
    assert!(
        !outcome.global_winner.starts_with("clairvoyant"),
        "clairvoyance must never win selection"
    );
    for row in &outcome.rows {
        assert!(row.cv_bsld >= 1.0, "{}: bsld below lower bound", row.log);
    }

    let rendered = format!(
        "{{\n\"campaigns\": {},\n\"cross_validation\": {}\n}}",
        serde_json::to_string_pretty(&campaigns).expect("serialize campaigns"),
        serde_json::to_string_pretty(&outcome).expect("serialize CV outcome"),
    );

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, format!("{rendered}\n")).expect("write golden");
        panic!("golden trace regenerated at {GOLDEN_PATH} — rerun without GOLDEN_REGEN");
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN_PATH} ({e}); regenerate with GOLDEN_REGEN=1")
    });
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "campaign/CV trace drifted from {GOLDEN_PATH}; if the change is intentional, \
         regenerate with GOLDEN_REGEN=1 and review the JSON diff"
    );
}

/// The quick-scale headline pin (the numbers EXPERIMENTS.md records).
/// Expensive (~full quick campaign, 130 triples × 6 logs), so ignored
/// by default; CI-release or a manual
/// `cargo test --release --test golden_trace -- --ignored` runs it.
#[test]
#[ignore = "runs the full quick-scale campaign (~minutes); use --ignored in release builds"]
fn quick_scale_headline_numbers_hold() {
    let setup = ExperimentSetup::quick();
    let workloads = setup.workloads();
    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    let campaigns: Vec<_> = workloads
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();
    let outcome = cross_validate(&campaigns);

    assert_eq!(
        outcome.global_winner, "ml(u=sq,o=sq,g=q/p)+req-time+easy-sjbf",
        "the quick-scale winning triple is pinned in EXPERIMENTS.md"
    );
    let mean = outcome.mean_reduction_vs_easy();
    assert!(
        (mean - 33.0).abs() < 1.0,
        "mean AVEbsld reduction vs EASY drifted: {mean:.2}% (pinned 33%)"
    );
    assert!(
        outcome.rows.iter().all(|r| r.reduction_vs_easy() > 0.0),
        "the C-V triple must beat EASY on every held-out log"
    );
}
