//! End-to-end pipeline integration: generator → SWF → parser → cleaner →
//! simulator → metrics, across all workspace crates through the facade.

use predictsim::prelude::*;
use predictsim::swf::{parse_log, write_log};

// Re-exported under a submodule path in the crate; alias for clarity.
mod swf_helpers {
    pub use predictsim::swf::filter::clean_default;
}

fn small_workload(seed: u64) -> GeneratedWorkload {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 350;
    spec.duration = 4 * 86_400;
    generate(&spec, seed)
}

#[test]
fn generated_workload_survives_swf_round_trip_and_simulates_identically() {
    let w = small_workload(1);

    // Simulate the in-memory jobs.
    let direct = HeuristicTriple::standard_easy()
        .run(&w.jobs, w.sim_config())
        .expect("direct simulation");

    // Export to SWF text, re-parse, clean, convert, simulate again.
    let text = write_log(&w.to_swf());
    let mut log = parse_log(&text).expect("parse exported log");
    let report = swf_helpers::clean_default(&mut log);
    assert_eq!(
        report.kept,
        w.jobs.len(),
        "cleaning must not drop synthetic jobs"
    );
    let jobs = predictsim::sim::jobs_from_swf(&log.records).expect("conversion");
    let via_swf = HeuristicTriple::standard_easy()
        .run(&jobs, w.sim_config())
        .expect("SWF-path simulation");

    assert_eq!(direct.ave_bsld(), via_swf.ave_bsld());
    assert_eq!(direct.outcomes.len(), via_swf.outcomes.len());
}

#[test]
fn all_named_triples_produce_audited_schedules() {
    let w = small_workload(2);
    for triple in [
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple::clairvoyant(Variant::Easy),
        HeuristicTriple::clairvoyant(Variant::EasySjbf),
    ] {
        let res = triple.run(&w.jobs, w.sim_config()).expect("simulation");
        assert_eq!(res.outcomes.len(), w.jobs.len(), "{}", triple.name());
        predictsim::sim::audit(&res)
            .unwrap_or_else(|v| panic!("{} audit violation: {v}", triple.name()));
    }
}

#[test]
fn bounded_slowdown_matches_manual_computation() {
    let w = small_workload(3);
    let res = HeuristicTriple::standard_easy()
        .run(&w.jobs, w.sim_config())
        .expect("simulation");
    let manual: f64 = res
        .outcomes
        .iter()
        .map(|o| {
            let wait = (o.start.0 - o.submit.0) as f64;
            let run = o.run as f64;
            ((wait + run) / run.max(DEFAULT_TAU)).max(1.0)
        })
        .sum::<f64>()
        / res.outcomes.len() as f64;
    assert!((res.ave_bsld() - manual).abs() < 1e-9);
}

#[test]
fn predictions_are_clamped_to_requested_times() {
    let w = small_workload(4);
    for triple in [
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ] {
        let res = triple.run(&w.jobs, w.sim_config()).expect("simulation");
        for o in &res.outcomes {
            assert!(
                o.initial_prediction >= 1 && o.initial_prediction <= o.requested,
                "{}: job {} prediction {} outside [1, {}]",
                triple.name(),
                o.swf_id,
                o.initial_prediction,
                o.requested
            );
        }
    }
}

#[test]
fn clairvoyant_sjbf_beats_plain_easy_on_congested_workload() {
    // The central Table 6 observation: "the Clairvoyant EASY-SJBF
    // algorithm almost always outperforms its competitors."
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 500;
    spec.duration = 5 * 86_400;
    spec.utilization = 0.9;
    let w = generate(&spec, 5);
    let easy = HeuristicTriple::standard_easy()
        .run(&w.jobs, w.sim_config())
        .expect("EASY");
    let clair_sjbf = HeuristicTriple::clairvoyant(Variant::EasySjbf)
        .run(&w.jobs, w.sim_config())
        .expect("clairvoyant SJBF");
    assert!(
        clair_sjbf.ave_bsld() < easy.ave_bsld(),
        "clairvoyant SJBF {} must beat EASY {}",
        clair_sjbf.ave_bsld(),
        easy.ave_bsld()
    );
}
