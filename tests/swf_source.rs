//! SWF round-trip fixture: a synthetic workload written out with
//! `swf::writer` and loaded back through [`SwfSource`] must simulate to
//! the *byte-identical* engine outcome as the in-memory jobs — the
//! guarantee that makes the SWF loader path a drop-in workload source
//! for every experiment.

use predictsim::prelude::*;
use predictsim::swf::write_log;

fn fixture_workload() -> GeneratedWorkload {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 400;
    spec.duration = 4 * 86_400;
    spec.utilization = 0.85;
    generate(&spec, 20150101)
}

fn triples_under_test() -> Vec<HeuristicTriple> {
    vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        // The ML path exercises per-user features, so the user-id
        // round trip matters here.
        HeuristicTriple::paper_winner(),
    ]
}

#[test]
fn swf_written_workload_round_trips_to_identical_jobs() {
    let w = fixture_workload();
    let text = write_log(&w.to_swf());
    let loaded = SwfSource::from_text(w.name.clone(), text).load().unwrap();
    assert_eq!(loaded.machine_size, w.machine_size);
    assert_eq!(
        &loaded.jobs[..],
        &w.jobs[..],
        "write_log → SwfSource must reproduce every job field (id, submit, \
         run, requested, procs, user, swf_id)"
    );
    let report = loaded.cleaning.expect("SWF path reports cleaning");
    assert_eq!(report.kept, w.jobs.len(), "cleaning must drop nothing");
    assert_eq!(report.dropped_unrunnable + report.dropped_oversize, 0);
}

#[test]
fn swf_source_simulates_byte_identically_to_in_memory_workload() {
    let w = fixture_workload();
    let text = write_log(&w.to_swf());
    let loaded = SwfSource::from_text(w.name.clone(), text).load().unwrap();

    for triple in triples_under_test() {
        let direct = Scenario::from_triple(&triple)
            .run_on(&w.jobs, w.sim_config())
            .expect("direct simulation");
        let via_swf = Scenario::from_triple(&triple)
            .run_on(&loaded.jobs, loaded.sim_config())
            .expect("SWF-path simulation");
        assert_eq!(
            direct,
            via_swf,
            "{}: SWF-loaded workload must yield the identical SimResult",
            triple.name()
        );
        // Field equality is the semantic contract; the rendered form
        // pins the "byte-identical" phrasing directly.
        assert_eq!(format!("{direct:?}"), format!("{via_swf:?}"));
    }
}

#[test]
fn swf_file_on_disk_behaves_like_the_text_fixture() {
    let w = fixture_workload();
    let path = std::env::temp_dir().join("predictsim_swf_source_fixture.swf");
    std::fs::write(&path, write_log(&w.to_swf())).expect("write fixture");
    let mut scenario = Scenario::builder()
        .workload(SwfSource::new(&path))
        .scheduler("easy-sjbf")
        .predictor("ave2")
        .correction("incremental")
        .build()
        .expect("registry names resolve");
    let via_file = scenario.run().expect("file-backed scenario");
    std::fs::remove_file(&path).ok();

    let direct = Scenario::from_triple(&HeuristicTriple::easy_plus_plus())
        .run_on(&w.jobs, w.sim_config())
        .expect("direct simulation");
    assert_eq!(direct, via_file);
}
