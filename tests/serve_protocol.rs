//! Wire-protocol robustness for the `serve` daemon, over real
//! sockets: malformed and oversized requests get typed `error` frames
//! (not disconnects), unknown registry names are rejected before
//! queueing, half-closed connections still stream their results,
//! per-request timeouts cancel cooperatively, a full queue answers
//! `busy`, concurrent cold submissions of the same cell coalesce into
//! exactly one simulation, and shutdown drains instead of dropping
//! work.
//!
//! Every test starts its own daemon on an ephemeral port; workload
//! seeds are test-unique so the process-wide `SimCache` cannot turn an
//! intended cold cell into a cross-test hit.

use std::time::Duration;

use predictsim::serve::{Client, Frame, ServeConfig, Server, Submission, WorkloadRequest};

/// A test-unique toy workload: `seed` keys the cache identity.
fn toy(name: &str, jobs: usize, seed: u64) -> Submission {
    let mut submission = Submission::new(WorkloadRequest::Toy {
        name: name.into(),
        jobs,
        duration: 14 * 86_400,
        utilization: 0.8,
        seed,
    });
    submission.scheduler = Some("easy-sjbf".into());
    submission.predictor = Some("ave2".into());
    submission.correction = Some("incremental".into());
    submission
}

fn next_ok(client: &mut Client) -> Frame {
    match client.next_frame().expect("read frame") {
        Some(Ok(frame)) => frame,
        Some(Err(e)) => panic!("unparsable frame: {e}"),
        None => panic!("server closed the connection early"),
    }
}

fn await_ack(client: &mut Client) -> u64 {
    match next_ok(client) {
        Frame::Ack { job, .. } => job,
        other => panic!("expected an ack, got {other:?}"),
    }
}

/// Skips interleaved frames (metrics, other jobs) until an `error`
/// frame arrives; returns its `(job, code, message)`.
fn await_error(client: &mut Client) -> (Option<u64>, String, String) {
    loop {
        if let Frame::Error { job, code, message } = next_ok(client) {
            return (job, code, message);
        }
    }
}

#[test]
fn malformed_requests_get_typed_errors_and_the_session_survives() {
    let server = Server::start(ServeConfig::default()).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    client.send_line("this is not json").expect("send");
    let (job, code, _) = await_error(&mut client);
    assert_eq!(job, None);
    assert_eq!(code, "malformed");

    // A JSON line that is not a request object is malformed too.
    client.send_line("[1,2,3]").expect("send");
    let (_, code, _) = await_error(&mut client);
    assert_eq!(code, "malformed");

    // The connection is still usable.
    client.ping().expect("ping");
    assert!(matches!(next_ok(&mut client), Frame::Pong));
    server.shutdown();
}

#[test]
fn unknown_policy_names_are_rejected_before_queueing() {
    let server = Server::start(ServeConfig::default()).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut submission = toy("unknown-policy", 40, 9_101);
    submission.scheduler = Some("warp-drive".into());
    client.submit(&submission).expect("submit");
    let (job, code, message) = await_error(&mut client);
    assert_eq!(job, None, "rejected before a job id is assigned");
    assert_eq!(code, "unknown-policy");
    assert!(
        message.contains("warp-drive"),
        "the offending name is echoed: {message}"
    );

    // A bad workload is only discovered at load time, after the ack —
    // so that error is job-tagged.
    client
        .submit(&Submission::new(WorkloadRequest::Preset {
            log: "NO-SUCH-LOG".into(),
            scale: 0.01,
            seed: 9_102,
        }))
        .expect("submit");
    let job = await_ack(&mut client);
    let (tagged, code, _) = await_error(&mut client);
    assert_eq!(tagged, Some(job));
    assert_eq!(code, "bad-workload");
    server.shutdown();
}

#[test]
fn oversized_lines_are_rejected_but_the_session_continues() {
    let cfg = ServeConfig {
        max_line_bytes: 4_096,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    let huge = format!("{{\"pad\":\"{}\"}}", "x".repeat(10_000));
    client.send_line(&huge).expect("send");
    let (job, code, _) = await_error(&mut client);
    assert_eq!(job, None);
    assert_eq!(code, "oversized");

    client.ping().expect("ping");
    assert!(matches!(next_ok(&mut client), Frame::Pong));
    server.shutdown();
}

#[test]
fn half_closed_connections_still_stream_their_results() {
    let server = Server::start(ServeConfig::default()).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    client
        .submit(&toy("half-closed", 60, 9_103))
        .expect("submit");
    // Close the write half immediately: the daemon sees EOF on its
    // reader but must keep streaming the submitted job's frames.
    client.finish_writing().expect("half-close");

    let job = await_ack(&mut client);
    let frames = client.drain_job(job).expect("frames stream back");
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Frame::Result { job: j, .. } if *j == job)),
        "result frame arrives after the half-close: {frames:?}"
    );
    // With the job done and the read side at EOF, the daemon closes.
    assert!(client.next_frame().expect("clean close").is_none());
    server.shutdown();
}

#[test]
fn per_request_timeouts_cancel_cooperatively() {
    let server = Server::start(ServeConfig::default()).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Big enough that the engine is still mid-simulation when the
    // 1 ms deadline passes; the cancel hook aborts it between event
    // batches.
    let mut submission = toy("timeout", 40_000, 9_104);
    submission.timeout_ms = Some(1);
    client.submit(&submission).expect("submit");
    let job = await_ack(&mut client);
    let (tagged, code, message) = await_error(&mut client);
    assert_eq!(tagged, Some(job));
    assert_eq!(code, "timeout");
    assert!(message.contains("1 ms"), "deadline echoed: {message}");
    server.shutdown();
}

#[test]
fn full_queues_reject_with_busy() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A occupies the single worker...
    client
        .submit(&toy("busy-a", 150_000, 9_105))
        .expect("submit");
    await_ack(&mut client);
    std::thread::sleep(Duration::from_millis(200));
    // ...B fills the single queue slot...
    client.submit(&toy("busy-b", 60, 9_106)).expect("submit");
    await_ack(&mut client);
    // ...so C bounces with `busy` instead of queueing unboundedly.
    client.submit(&toy("busy-c", 60, 9_107)).expect("submit");
    let (job, code, message) = await_error(&mut client);
    assert_eq!(job, None, "rejected before a job id is assigned");
    assert_eq!(code, "busy");
    assert!(
        message.contains("resubmit"),
        "actionable message: {message}"
    );
    // Dropping the server drains: A cancels cooperatively, B is
    // rejected with `shutdown` — nothing hangs.
    server.shutdown();
}

#[test]
fn concurrent_cold_submissions_coalesce_into_one_simulation() {
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon starts");
    let addr = server.addr();

    // Two clients race the same cold cell; the cache's single-flight
    // layer must run exactly one simulation.
    let submit = move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .submit(&toy("coalesce", 20_000, 9_108))
            .expect("submit");
        let job = await_ack(&mut client);
        let frames = client.drain_job(job).expect("frames stream back");
        frames
            .into_iter()
            .find_map(|f| match f {
                Frame::Result { source, result, .. } => {
                    let json = serde_json::to_string_pretty(&result).expect("result json");
                    Some((source, json))
                }
                _ => None,
            })
            .expect("a result frame arrives")
    };
    let racer = std::thread::spawn(submit);
    let (source_a, json_a) = submit();
    let (source_b, json_b) = racer.join().expect("client thread");

    let simulated = [&source_a, &source_b]
        .iter()
        .filter(|s| s.as_str() == "simulated")
        .count();
    assert_eq!(
        simulated, 1,
        "exactly one client simulates (got {source_a} / {source_b})"
    );
    assert_eq!(json_a, json_b, "both clients get byte-identical results");
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_and_in_flight_work() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A is in flight when the drain starts; B never leaves the queue.
    client
        .submit(&toy("drain-a", 150_000, 9_109))
        .expect("submit");
    let job_a = await_ack(&mut client);
    client.submit(&toy("drain-b", 60, 9_110)).expect("submit");
    let job_b = await_ack(&mut client);
    std::thread::sleep(Duration::from_millis(200));

    let reader = std::thread::spawn(move || {
        let mut outcomes = Vec::new();
        while let Some(frame) = client.next_frame().expect("read") {
            match frame.expect("parsable frame") {
                Frame::Result { job, .. } => outcomes.push((job, "result".to_string())),
                Frame::Error { job, code, .. } => outcomes.push((job.expect("job-tagged"), code)),
                _ => {}
            }
            if outcomes.len() == 2 {
                break;
            }
        }
        outcomes
    });
    server.shutdown();
    let outcomes = reader.join().expect("reader thread");

    let of = |job: u64| {
        outcomes
            .iter()
            .find(|(j, _)| *j == job)
            .map(|(_, o)| o.as_str())
            .unwrap_or_else(|| panic!("no terminal frame for job {job}: {outcomes:?}"))
    };
    // The in-flight job either finished just before the flag was seen
    // or was cancelled; the queued one must be rejected, not dropped.
    assert!(
        of(job_a) == "shutdown" || of(job_a) == "result",
        "in-flight job resolves on drain: {outcomes:?}"
    );
    assert_eq!(of(job_b), "shutdown", "queued job is rejected on drain");
}
