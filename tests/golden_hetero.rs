//! Golden pin for the heterogeneous cluster path: a 2-partition mini
//! campaign whose numbers are committed byte-for-byte, run at pool
//! widths 1 and 8 so the hetero routing loop is proven independent of
//! the campaign fan-out.
//!
//! The single-machine golden trace (`golden_trace.rs`) proves the
//! refactor left the legacy path untouched; this file pins the *new*
//! behaviour — speed-scaled runtimes and first-fit partition routing —
//! so future scheduler or engine work cannot silently shift
//! heterogeneous results.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_hetero
//! ```

use predictsim::experiments::{run_campaign_cluster, CorrectionKind};
use predictsim::prelude::*;
use predictsim::sim::ClusterSpec;

const GOLDEN_PATH: &str = "tests/golden/hetero_pipeline.json";

/// The pinned cluster: a full-speed 64-proc main partition plus a
/// half-speed 32-proc overflow partition. The toy workload's widest
/// jobs fit the main partition, and the speed split guarantees the
/// overflow partition visibly stretches (and sometimes kills) jobs.
const CLUSTER: &str = "cluster:64x1+32x0.5";

fn golden_workloads() -> Vec<GeneratedWorkload> {
    [("H1", 0.80), ("H2", 0.92)]
        .iter()
        .enumerate()
        .map(|(i, (name, util))| {
            let mut spec = WorkloadSpec::toy();
            spec.name = (*name).into();
            spec.jobs = 220;
            spec.duration = 3 * 86_400;
            spec.utilization = *util;
            generate(&spec, 20150201 + i as u64)
        })
        .collect()
}

/// A small triple slice covering the baseline, a learning triple, and a
/// correction-heavy triple — enough to exercise prediction, correction,
/// and both backfill orders on the split machine.
fn golden_triples() -> Vec<HeuristicTriple> {
    vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple {
            prediction: PredictionTechnique::Ave2,
            correction: Some(CorrectionKind::RecursiveDoubling),
            variant: Variant::Easy,
        },
    ]
}

#[test]
fn hetero_mini_campaign_matches_golden_trace() {
    let cluster: ClusterSpec = CLUSTER.parse().expect("pinned cluster spec parses");
    let workloads = golden_workloads();
    let triples = golden_triples();

    // The same campaign at both ends of the fan-out spectrum: the
    // hetero routing loop must be a pure function of the inputs, not of
    // how the triple grid is spread across worker threads.
    let narrow: Vec<_> = rayon::pool::with_num_threads(1, || {
        workloads
            .iter()
            .map(|w| run_campaign_cluster(&w.into(), cluster, &triples))
            .collect()
    });
    let wide: Vec<_> = rayon::pool::with_num_threads(8, || {
        workloads
            .iter()
            .map(|w| run_campaign_cluster(&w.into(), cluster, &triples))
            .collect()
    });
    assert_eq!(narrow, wide, "hetero campaign varies with pool width");

    // Structural claims independent of the exact bytes.
    for campaign in &narrow {
        assert_eq!(campaign.machine_size, 96, "total procs = 64 + 32");
        for row in &campaign.results {
            assert!(
                row.ave_bsld >= 1.0,
                "{}: bsld below lower bound",
                row.triple
            );
        }
    }

    let rendered = serde_json::to_string_pretty(&narrow).expect("serialize hetero campaigns");

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, format!("{rendered}\n")).expect("write golden");
        panic!("golden trace regenerated at {GOLDEN_PATH} — rerun without GOLDEN_REGEN");
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN_PATH} ({e}); regenerate with GOLDEN_REGEN=1")
    });
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "hetero campaign trace drifted from {GOLDEN_PATH}; if the change is intentional, \
         regenerate with GOLDEN_REGEN=1 and review the JSON diff"
    );
}
