//! Integration tests of the campaign and cross-validation machinery on a
//! reduced triple set (full 128-triple campaigns run in the benches and
//! the `repro` binary; here we keep debug-build runtimes short).

use predictsim::experiments::{reference_triples, CampaignResult, CorrectionKind};
use predictsim::prelude::*;

fn workloads() -> Vec<GeneratedWorkload> {
    ["W1", "W2", "W3"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut spec = WorkloadSpec::toy();
            spec.name = (*name).into();
            spec.jobs = 250;
            spec.duration = 3 * 86_400;
            spec.utilization = 0.8 + 0.05 * i as f64;
            generate(&spec, 100 + i as u64)
        })
        .collect()
}

fn reduced_triples() -> Vec<HeuristicTriple> {
    let mut triples = vec![
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
        HeuristicTriple {
            prediction: PredictionTechnique::Ml(MlConfig::new(
                AsymmetricLoss::SQUARED,
                WeightingScheme::Constant,
            )),
            correction: Some(CorrectionKind::RecursiveDoubling),
            variant: Variant::Easy,
        },
        HeuristicTriple {
            prediction: PredictionTechnique::Ave2,
            correction: Some(CorrectionKind::RequestedTime),
            variant: Variant::Easy,
        },
    ];
    triples.extend(reference_triples());
    triples
}

#[test]
fn campaign_covers_every_triple_exactly_once() {
    let ws = workloads();
    let triples = reduced_triples();
    let campaign = run_campaign(&ws[0], &triples);
    assert_eq!(campaign.results.len(), triples.len());
    let mut names: Vec<&str> = campaign.results.iter().map(|r| r.triple.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), triples.len(), "duplicate triple results");
}

#[test]
fn cross_validation_selects_a_non_clairvoyant_triple_and_reports_rows() {
    let ws = workloads();
    let triples = reduced_triples();
    let campaigns: Vec<CampaignResult> = ws.iter().map(|w| run_campaign(w, &triples)).collect();
    let outcome = cross_validate(&campaigns);
    assert_eq!(outcome.rows.len(), 3);
    assert!(
        !outcome.global_winner.starts_with("clairvoyant"),
        "clairvoyance is not a selectable technique"
    );
    for row in &outcome.rows {
        assert!(row.cv_bsld >= 1.0);
        assert!(row.easy_bsld >= 1.0);
        // The reduction formulas must be consistent with the raw numbers.
        let expect = 100.0 * (1.0 - row.cv_bsld / row.easy_bsld);
        assert!((row.reduction_vs_easy() - expect).abs() < 1e-9);
    }
}

#[test]
fn campaign_json_artifacts_round_trip() {
    let ws = workloads();
    let campaign = run_campaign(&ws[0], &reduced_triples());
    let json = serde_json::to_string(&campaign).expect("serialize");
    let back: CampaignResult = serde_json::from_str(&json).expect("deserialize");
    // Float text formatting may differ in the last ULP; a second
    // serialization must be a fixed point.
    let json2 = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(json2, serde_json::to_string(&back).expect("stable"));
    assert_eq!(back.log, campaign.log);
    assert_eq!(back.results.len(), campaign.results.len());
    for (a, b) in back.results.iter().zip(&campaign.results) {
        assert_eq!(a.triple, b.triple);
        assert!((a.ave_bsld - b.ave_bsld).abs() < 1e-9);
        assert_eq!(a.corrections, b.corrections);
    }
}

#[test]
fn table_helpers_work_on_reduced_campaigns() {
    use predictsim::experiments::tables::{render_table1, render_table8, table1, table8};
    let ws: Vec<predictsim::experiments::LoadedWorkload> =
        workloads().into_iter().map(Into::into).collect();
    let rows = table1(&ws[..1]);
    assert_eq!(rows.len(), 1);
    assert!(render_table1(&rows).contains("W1"));

    let t8 = table8(&ws[0]);
    assert_eq!(t8.len(), 2);
    assert!(render_table8(&t8).contains("E-Loss"));
}

#[test]
fn figure_helpers_work_on_reduced_campaigns() {
    use predictsim::experiments::figures::{fig3, fig4_fig5};
    let ws = workloads();
    let triples = reduced_triples();
    let campaigns: Vec<CampaignResult> = ws.iter().map(|w| run_campaign(w, &triples)).collect();
    let fig = fig3(&campaigns, "W1", "W2");
    assert_eq!(fig.points.len(), triples.len());

    let f45 = fig4_fig5(&ws[0].clone().into(), 25);
    assert_eq!(f45.error_series.len(), 4);
    assert_eq!(f45.value_series.len(), 5);
}
