//! A miniature §6 experiment campaign: all 128 heuristic triples on two
//! scaled logs, followed by leave-one-out triple selection — the Table 6
//! and Table 7 machinery end to end on a laptop budget.
//!
//! ```text
//! cargo run --release --example mini_campaign
//! ```
//!
//! (For the real thing across all six logs, use the dedicated binary:
//! `cargo run --release -p predictsim --bin repro -- all`.)

use predictsim::experiments::{reference_triples, CampaignResult};
use predictsim::prelude::*;
use predictsim::workload::presets;

fn main() {
    // Two logs, 2% scale: ~1,800 jobs total, a few seconds of work.
    let specs = [
        presets::kth_sp2().scaled(0.02),
        presets::sdsc_sp2().scaled(0.02),
    ];
    let workloads: Vec<GeneratedWorkload> = specs.iter().map(|s| generate(s, 20150101)).collect();

    let mut triples = campaign_triples();
    triples.extend(reference_triples());
    println!(
        "running {} triples on {} logs ({} simulations)...",
        triples.len(),
        workloads.len(),
        triples.len() * workloads.len()
    );

    let campaigns: Vec<CampaignResult> = workloads
        .iter()
        .map(|w| run_campaign(w, &triples))
        .collect();

    for c in &campaigns {
        let easy = c.bsld_of(&HeuristicTriple::standard_easy().name());
        let easypp = c.bsld_of(&HeuristicTriple::easy_plus_plus().name());
        let best = c
            .best_where(|r| r.predictor != "clairvoyant")
            .expect("non-empty campaign");
        let clair = c.bsld_of("clairvoyant+easy-sjbf");
        println!(
            "\n=== {} ({} jobs on {} procs)",
            c.log, c.jobs, c.machine_size
        );
        println!("  EASY                {easy:>8.2}");
        println!("  EASY++              {easypp:>8.2}");
        println!(
            "  best triple         {:>8.2}  ({})",
            best.ave_bsld, best.triple
        );
        println!("  clairvoyant SJBF    {clair:>8.2}  (upper bound)");
    }

    // Leave-one-out selection across the two logs.
    let outcome = cross_validate(&campaigns);
    println!("\n=== leave-one-out cross-validation");
    for row in &outcome.rows {
        println!(
            "  held-out {:<14} selected {:<44} bsld {:>7.2} ({:+.0}% vs EASY)",
            row.log,
            row.selected_triple,
            row.cv_bsld,
            -row.reduction_vs_easy() * -1.0,
        );
    }
    println!(
        "\nglobal winner: {} (paper's: {})",
        outcome.global_winner,
        HeuristicTriple::paper_winner().name()
    );
}
