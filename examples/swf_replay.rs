//! Replay a Standard Workload Format (SWF) log through the simulator.
//!
//! This is the workflow for evaluating the paper's method on *real*
//! production traces from the Parallel Workloads Archive:
//!
//! ```text
//! cargo run --release --example swf_replay -- path/to/LOG.swf
//! ```
//!
//! Without an argument, the example writes a synthetic SWF file to a
//! temporary directory first and replays that — demonstrating the full
//! round trip (generate → write SWF → parse → clean → simulate).

use std::path::PathBuf;

use predictsim::prelude::*;
use predictsim::swf::{clean, parse_log, write_log, CleaningRules};

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // No log supplied: fabricate one so the example is self-contained.
            let spec = WorkloadSpec::toy();
            let workload = generate(&spec, 7);
            let text = write_log(&workload.to_swf());
            let path = std::env::temp_dir().join("predictsim_quickstart.swf");
            std::fs::write(&path, text).expect("write temporary SWF");
            println!("no log given; wrote synthetic log to {}", path.display());
            path
        });

    // 1. Parse.
    let text = std::fs::read_to_string(&path).expect("read SWF file");
    let mut log = parse_log(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
    let machine_size = log
        .machine_size()
        .expect("log has no MaxProcs header and no jobs to infer it from");
    println!(
        "parsed {}: {} records, MaxProcs {}",
        path.display(),
        log.records.len(),
        machine_size
    );

    // 2. Clean, reporting what the cleaning conventions dropped/repaired
    //    (silent cleaning is a reproducibility hazard — Frachtenberg &
    //    Feitelson [6]).
    let report = clean(&mut log, machine_size, CleaningRules::default());
    println!(
        "cleaned: kept {} | dropped {} unrunnable, {} oversize | repaired {} estimates, {} inversions",
        report.kept,
        report.dropped_unrunnable,
        report.dropped_oversize,
        report.repaired_estimates,
        report.repaired_inversions,
    );

    // 3. Convert and simulate under three schedulers.
    let jobs = predictsim::sim::jobs_from_swf(&log.records).expect("convert records");
    let cfg = SimConfig::single(machine_size as u32);

    for triple in [
        HeuristicTriple::standard_easy(),
        HeuristicTriple::easy_plus_plus(),
        HeuristicTriple::paper_winner(),
    ] {
        let res = triple.run(&jobs, cfg).expect("simulation failed");
        // Re-verify the schedule invariants independently of the engine.
        predictsim::sim::audit(&res).expect("schedule audit failed");
        println!(
            "{:<46} AVEbsld {:>8.2}   utilization {:>5.1}%   makespan {}",
            triple.name(),
            res.ave_bsld(),
            100.0 * res.utilization(),
            predictsim::sim::time::format_duration(res.makespan()),
        );
    }
}
