//! Write a synthetic workload preset to disk as an SWF trace.
//!
//! Pairs with the streaming loader: generate any registered preset
//! (Table 4 logs, `toy`, the cloud-scale `millions-of-users` stressor)
//! at a chosen scale, serialize it as Standard Workload Format, and
//! feed the file back through `repro scenario --swf` or
//! [`predictsim::experiments::SwfSource`]:
//!
//! ```text
//! cargo run --release --example dump_trace -- millions-of-users 1.0 /tmp/million.swf
//! ./target/release/repro scenario --swf /tmp/million.swf --timing
//! ```
//!
//! CI's `ingest-smoke` job uses exactly this round trip to pin that a
//! ~1M-job trace stream-loads without intermediate record vectors.

use predictsim::swf::write_log;
use predictsim::workload::{by_name, generate};

fn main() {
    const USAGE: &str = "usage: dump_trace <preset> <scale> <out.swf> [seed]";
    let mut args = std::env::args().skip(1);
    let name = args.next().expect(USAGE);
    let scale: f64 = args
        .next()
        .expect(USAGE)
        .parse()
        .expect("scale must be a number");
    let out = std::path::PathBuf::from(args.next().expect(USAGE));
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(20150101);

    let spec = by_name(&name).unwrap_or_else(|| panic!("unknown preset {name:?}"));
    let spec = if (scale - 1.0).abs() < f64::EPSILON {
        spec
    } else {
        spec.scaled(scale)
    };
    let workload = generate(&spec, seed);
    std::fs::write(&out, write_log(&workload.to_swf())).expect("write SWF");
    println!(
        "wrote {} jobs ({} active users, machine {}) to {}",
        workload.jobs.len(),
        workload.stats.active_users,
        workload.machine_size,
        out.display()
    );
}
