//! Quickstart: simulate a synthetic HPC workload under standard EASY
//! backfilling and under the paper's prediction-augmented scheduler, and
//! compare the average bounded slowdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use predictsim::prelude::*;
use predictsim::workload::presets;

fn main() {
    // A scaled-down synthetic stand-in for the paper's KTH-SP2 log, with
    // the phenomena the paper's method exploits: per-user runtime
    // locality, heavy requested-time over-estimation, day/week cycles and
    // crash noise.
    let workload = generate(&presets::kth_sp2().scaled(0.1), 42);
    println!(
        "workload: {} jobs on {} processors, offered utilization {:.0}%, \
         mean over-estimation {:.1}x",
        workload.jobs.len(),
        workload.machine_size,
        100.0 * workload.stats.offered_utilization,
        workload.stats.mean_overestimate,
    );

    let cfg = workload.sim_config();

    // Standard EASY: schedules with the user-requested running times.
    let easy = HeuristicTriple::standard_easy()
        .run(&workload.jobs, cfg)
        .expect("EASY simulation failed");

    // EASY++ (Tsafrir et al.): AVE2 predictions + incremental correction
    // + shortest-job-backfilled-first.
    let easypp = HeuristicTriple::easy_plus_plus()
        .run(&workload.jobs, cfg)
        .expect("EASY++ simulation failed");

    // The paper's contribution: on-line NAG-trained polynomial regression
    // with the E-Loss, incremental correction, EASY-SJBF.
    let ml = HeuristicTriple::paper_winner()
        .run(&workload.jobs, cfg)
        .expect("ML simulation failed");

    // The triple our own cross-validation selects on the synthetic logs
    // (see EXPERIMENTS.md): symmetric linear loss, requested-time
    // correction, EASY-SJBF.
    let ml_cv = HeuristicTriple {
        prediction: PredictionTechnique::Ml(MlConfig::new(
            AsymmetricLoss {
                under: predictsim::core::BasisLoss::Linear,
                over: predictsim::core::BasisLoss::Linear,
            },
            WeightingScheme::Constant,
        )),
        correction: Some(predictsim::experiments::CorrectionKind::RequestedTime),
        variant: Variant::EasySjbf,
    }
    .run(&workload.jobs, cfg)
    .expect("ML simulation failed");

    // Clairvoyant upper bound: exact running times.
    let clair = HeuristicTriple::clairvoyant(Variant::EasySjbf)
        .run(&workload.jobs, cfg)
        .expect("clairvoyant simulation failed");

    println!(
        "\n{:<34} {:>9} {:>11} {:>12}",
        "scheduler", "AVEbsld", "mean wait", "corrections"
    );
    for r in [&easy, &easypp, &ml, &ml_cv, &clair] {
        let label = format!("{}+{}", r.predictor, r.scheduler);
        println!(
            "{:<34} {:>9.2} {:>10.0}s {:>12}",
            label,
            r.ave_bsld(),
            r.mean_wait(),
            r.total_corrections()
        );
    }

    let gain = 100.0 * (1.0 - ml_cv.ave_bsld() / easy.ave_bsld());
    println!(
        "\nprediction-augmented backfilling changes AVEbsld by {gain:.0}% vs EASY \
         (positive = better; the paper reports an average gain of 28% across six logs)"
    );
}
