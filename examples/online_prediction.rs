//! Watch the on-line learner at work: prediction quality over time, the
//! asymmetry of the E-Loss, and the Table 8 / Figure 4–5 analyses in
//! miniature.
//!
//! ```text
//! cargo run --release --example online_prediction
//! ```

use predictsim::core::{mae_of_outcomes, mean_eloss_of_outcomes};
use predictsim::metrics::error::underprediction_rate;
use predictsim::prelude::*;

fn run_with(
    workload: &GeneratedWorkload,
    label: &str,
    prediction: PredictionTechnique,
) -> (String, predictsim::sim::SimResult) {
    let triple = HeuristicTriple {
        prediction,
        correction: Some(predictsim::experiments::CorrectionKind::Incremental),
        variant: Variant::EasySjbf,
    };
    (
        label.to_string(),
        triple
            .run(&workload.jobs, workload.sim_config())
            .expect("simulation failed"),
    )
}

fn main() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 6_000;
    spec.duration = 45 * 86_400;
    let workload = generate(&spec, 99);
    println!(
        "workload: {} jobs, {} users, {:.0}% offered utilization\n",
        workload.jobs.len(),
        workload.stats.active_users,
        100.0 * workload.stats.offered_utilization
    );

    let runs = vec![
        run_with(
            &workload,
            "requested-time",
            PredictionTechnique::RequestedTime,
        ),
        run_with(&workload, "ave2 (Tsafrir)", PredictionTechnique::Ave2),
        run_with(
            &workload,
            "ML squared loss",
            PredictionTechnique::Ml(MlConfig::new(
                AsymmetricLoss::SQUARED,
                WeightingScheme::Constant,
            )),
        ),
        run_with(
            &workload,
            "ML E-Loss",
            PredictionTechnique::Ml(MlConfig::e_loss()),
        ),
    ];

    // Table-8-style comparison: MAE vs mean E-Loss, plus the
    // under-prediction rate that explains Figures 4 and 5.
    println!(
        "{:<18} {:>10} {:>14} {:>12} {:>9}",
        "technique", "MAE (s)", "mean E-Loss", "under-pred", "AVEbsld"
    );
    for (label, res) in &runs {
        let preds: Vec<f64> = res
            .outcomes
            .iter()
            .map(|o| o.initial_prediction as f64)
            .collect();
        let actual: Vec<f64> = res.outcomes.iter().map(|o| o.run as f64).collect();
        println!(
            "{:<18} {:>10.0} {:>14.3e} {:>11.0}% {:>9.2}",
            label,
            mae_of_outcomes(&res.outcomes),
            mean_eloss_of_outcomes(&res.outcomes),
            100.0 * underprediction_rate(&preds, &actual),
            res.ave_bsld(),
        );
    }

    // Learning curve of the E-Loss model: MAE over consecutive windows of
    // completions — shows the on-line learner improving as history grows.
    let (_, eloss_run) = &runs[3];
    println!("\nE-Loss learner MAE by completion window:");
    let window = eloss_run.outcomes.len() / 8;
    let mut by_end = eloss_run.outcomes.clone();
    by_end.sort_by_key(|o| o.end);
    for (i, chunk) in by_end.chunks(window).enumerate().take(8) {
        let mae: f64 = chunk
            .iter()
            .map(|o| (o.initial_prediction - o.run).abs() as f64)
            .sum::<f64>()
            / chunk.len() as f64;
        println!("  window {i}: MAE {:>7.0}s over {} jobs", mae, chunk.len());
    }

    // Figure-5-style quantiles of predicted values (hours).
    println!("\npredicted-value quantiles (hours):");
    for (label, res) in &runs {
        let e = Ecdf::new(
            res.outcomes
                .iter()
                .map(|o| o.initial_prediction as f64 / 3600.0)
                .collect(),
        );
        println!(
            "  {:<18} p25={:>6.2} p50={:>6.2} p75={:>6.2} p95={:>7.2}",
            label,
            e.quantile(0.25),
            e.quantile(0.5),
            e.quantile(0.75),
            e.quantile(0.95)
        );
    }
}
