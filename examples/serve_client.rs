//! A scriptable client for the `repro serve` daemon: submit one
//! scenario, pretty-print the streaming `metrics` frames, and exit 0
//! once the `result` frame lands (1 on an `error` frame).
//!
//! ```text
//! # terminal 1
//! cargo run --release -p predictsim --bin repro -- serve --listen 127.0.0.1:7071
//! # terminal 2
//! cargo run --release --example serve_client -- 127.0.0.1:7071 \
//!     --log KTH --scale 0.02 --scheduler easy-sjbf \
//!     --predictor ave2 --correction incremental
//! ```
//!
//! `--result-out FILE` writes the result frame's embedded
//! `TripleResult` as pretty JSON — byte-identical to the
//! `scenario.json` that `repro scenario --out` produces, which is what
//! the CI smoke job diffs.

use std::io::Write as _;
use std::time::Duration;

use predictsim::serve::{Client, Frame, Submission, WorkloadRequest};

struct Args {
    addr: String,
    swf: Option<String>,
    toy_jobs: Option<usize>,
    log: String,
    scale: f64,
    seed: u64,
    scheduler: Option<String>,
    predictor: Option<String>,
    correction: Option<String>,
    cluster: Option<String>,
    timeout_ms: Option<u64>,
    metrics_every: Option<u64>,
    result_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut swf = None;
    let mut toy_jobs = None;
    let mut log = "KTH".to_string();
    let mut scale = 0.02;
    let mut seed = 20150101;
    let mut scheduler = None;
    let mut predictor = None;
    let mut correction = None;
    let mut cluster = None;
    let mut timeout_ms = None;
    let mut metrics_every = None;
    let mut result_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--swf" => swf = Some(value("--swf")?),
            "--toy-jobs" => {
                let v = value("--toy-jobs")?;
                toy_jobs = Some(v.parse().map_err(|_| format!("bad job count {v:?}"))?);
            }
            "--log" => log = value("--log")?,
            "--scale" => {
                let v = value("--scale")?;
                scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--scheduler" => scheduler = Some(value("--scheduler")?),
            "--predictor" => predictor = Some(value("--predictor")?),
            "--correction" => correction = Some(value("--correction")?),
            "--cluster" => cluster = Some(value("--cluster")?),
            "--timeout-ms" => {
                let v = value("--timeout-ms")?;
                timeout_ms = Some(v.parse().map_err(|_| format!("bad timeout {v:?}"))?);
            }
            "--metrics-every" => {
                let v = value("--metrics-every")?;
                metrics_every = Some(v.parse().map_err(|_| format!("bad cadence {v:?}"))?);
            }
            "--result-out" => result_out = Some(value("--result-out")?.into()),
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(Args {
        addr: addr.ok_or("usage: serve_client ADDR [scenario flags]")?,
        swf,
        toy_jobs,
        log,
        scale,
        seed,
        scheduler,
        predictor,
        correction,
        cluster,
        timeout_ms,
        metrics_every,
        result_out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let workload = match (&args.swf, args.toy_jobs) {
        (Some(path), _) => WorkloadRequest::Swf { path: path.clone() },
        // `--toy-jobs N` is the CI knob for an arbitrarily slow cold
        // cell (the SIGINT-drain smoke needs a job that outlives the
        // signal).
        (None, Some(jobs)) => WorkloadRequest::Toy {
            name: "toy".into(),
            jobs,
            duration: 90 * 86_400,
            utilization: 0.8,
            seed: args.seed,
        },
        (None, None) => WorkloadRequest::Preset {
            log: args.log.clone(),
            scale: args.scale,
            seed: args.seed,
        },
    };
    let mut submission = Submission::new(workload);
    submission.scheduler = args.scheduler.clone();
    submission.predictor = args.predictor.clone();
    submission.correction = args.correction.clone();
    submission.cluster = args.cluster.clone();
    submission.timeout_ms = args.timeout_ms;
    submission.metrics_every = args.metrics_every;

    let mut client = Client::connect_with_retry(args.addr.as_str(), Duration::from_secs(5))
        .unwrap_or_else(|e| {
            eprintln!("error: cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        });
    client.submit(&submission).expect("submit");

    loop {
        let frame = match client.next_frame() {
            Ok(Some(Ok(frame))) => frame,
            Ok(Some(Err(e))) => {
                eprintln!("error: unparsable frame: {e}");
                std::process::exit(1);
            }
            Ok(None) => {
                eprintln!("error: server closed the connection before the result");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: read failed: {e}");
                std::process::exit(1);
            }
        };
        match frame {
            Frame::Ack {
                job,
                triple,
                workload,
            } => println!("job {job}: {triple} on {workload}"),
            Frame::Metrics {
                job,
                events,
                finished,
                submitted,
                ave_bsld,
                ..
            } => println!(
                "job {job}: {events} events, {finished}/{submitted} jobs finished, \
                 AVEbsld so far {ave_bsld:.1}"
            ),
            Frame::Result {
                job,
                source,
                result,
            } => {
                let json = serde_json::to_string_pretty(&result).expect("result is json");
                if let Some(path) = &args.result_out {
                    let mut file = std::fs::File::create(path).expect("create --result-out file");
                    file.write_all(json.as_bytes()).expect("write result");
                    println!(
                        "job {job}: done (source: {source}), wrote {}",
                        path.display()
                    );
                } else {
                    println!("job {job}: done (source: {source})");
                    println!("{json}");
                }
                return;
            }
            Frame::Error { job, code, message } => {
                match job {
                    Some(job) => eprintln!("job {job}: error [{code}] {message}"),
                    None => eprintln!("error [{code}] {message}"),
                }
                std::process::exit(1);
            }
            Frame::Pong | Frame::Stats(_) => {}
        }
    }
}
