//! Compare the four scheduling policies under perfect information on a
//! congested workload — the pure-scheduling ablation (no prediction error
//! in the picture).
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use predictsim::prelude::*;
use predictsim::sim::{audit, ConservativeScheduler};

fn main() {
    let mut spec = WorkloadSpec::toy();
    spec.jobs = 4_000;
    spec.duration = 28 * 86_400;
    spec.utilization = 0.85;
    let workload = generate(&spec, 2024);
    let cfg = workload.sim_config();
    println!(
        "workload: {} jobs on {} processors, {:.0}% offered utilization\n",
        workload.jobs.len(),
        workload.machine_size,
        100.0 * workload.stats.offered_utilization
    );

    println!(
        "{:<16} {:>9} {:>11} {:>12} {:>10}",
        "scheduler", "AVEbsld", "mean wait", "utilization", "makespan"
    );

    // FCFS (no backfilling), EASY, EASY-SJBF as trait objects...
    let mut schedulers: Vec<Box<dyn predictsim::sim::Scheduler>> = vec![
        Box::new(FcfsScheduler),
        Box::new(EasyScheduler::new()),
        Box::new(EasyScheduler::sjbf()),
        Box::new(ConservativeScheduler::new()),
    ];

    for scheduler in schedulers.iter_mut() {
        let mut predictor = ClairvoyantPredictor;
        let res = simulate(
            &workload.jobs,
            cfg,
            scheduler.as_mut(),
            &mut predictor,
            None,
        )
        .expect("simulation failed");
        // Every schedule must pass the independent invariant audit.
        let report = audit(&res).expect("audit failed");
        assert_eq!(report.jobs, workload.jobs.len());
        println!(
            "{:<16} {:>9.2} {:>10.0}s {:>11.1}% {:>10}",
            res.scheduler,
            res.ave_bsld(),
            res.mean_wait(),
            100.0 * res.utilization(),
            predictsim::sim::time::format_duration(res.makespan()),
        );
    }

    println!(
        "\nbackfilling (EASY) should dominate FCFS; SJBF ordering further \
         improves the average bounded slowdown (§5.1 of the paper); \
         conservative backfilling trades packing for its no-starvation \
         guarantee (§2.1)."
    );
}
